"""Tests for JSON/CSV export of experiment results."""

import csv
import io
import json

import pytest

from repro.experiments import bench_scale, run_experiment
from repro.metrics import (
    INTERVAL_FIELDS,
    IntervalRecord,
    interval_to_dict,
    intervals_to_csv,
    result_to_dict,
    result_to_json,
    save_result,
)


@pytest.fixture(scope="module")
def result():
    from dataclasses import replace

    from repro.cluster import ClusterConfig
    from repro.workload import WorkloadConfig

    config = bench_scale(
        scheduler="ApplyAll", load="low",
        measure_intervals=5, warmup_intervals=1,
    )
    config = replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(tuple_count=200, distinct_types=40),
    )
    return run_experiment(config)


class TestIntervalExport:
    def test_dict_has_all_fields(self):
        record = IntervalRecord(index=3, start=60.0, end=80.0)
        record.submitted = 10
        data = interval_to_dict(record)
        assert set(data) == set(INTERVAL_FIELDS)
        assert data["index"] == 3
        assert data["submitted"] == 10
        assert data["failure_rate"] == 0.0

    def test_csv_roundtrip(self, result):
        text = intervals_to_csv(result.intervals)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(result.intervals)
        assert rows[0]["index"] == "0"
        # Numeric columns parse back.
        for row in rows:
            float(row["throughput_txn_per_min"])
            float(row["rep_rate"])


class TestResultExport:
    def test_dict_structure(self, result):
        data = result_to_dict(result)
        assert data["config"]["scheduler"] == "ApplyAll"
        assert data["rep_ops_total"] == result.rep_ops_total
        assert len(data["intervals"]) == len(result.intervals)
        assert "mean_failure_rate" in data["summary"]

    def test_json_parses(self, result):
        parsed = json.loads(result_to_json(result))
        assert parsed["config"]["name"] == result.config.name

    def test_save_json_and_csv(self, result, tmp_path):
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        save_result(result, str(json_path))
        save_result(result, str(csv_path))
        assert json.loads(json_path.read_text())["config"]
        assert csv_path.read_text().startswith("index,")

    def test_unknown_extension_rejected(self, result):
        with pytest.raises(ValueError):
            save_result(result, "out.parquet")


class TestStateRoundTrip:
    """Full-fidelity serialisation backing the experiment result cache."""

    def test_interval_state_round_trips(self, result):
        from dataclasses import asdict

        from repro.metrics import (
            interval_from_state_dict,
            interval_to_state_dict,
        )

        for record in result.intervals:
            rebuilt = interval_from_state_dict(
                json.loads(json.dumps(interval_to_state_dict(record)))
            )
            assert asdict(rebuilt) == asdict(record)

    def test_state_fields_cover_every_raw_field(self):
        from dataclasses import fields

        from repro.metrics import INTERVAL_STATE_FIELDS

        assert set(INTERVAL_STATE_FIELDS) == {
            f.name for f in fields(IntervalRecord)
        }
        # The derived latency samples survive, unlike the export columns.
        assert "latencies" in INTERVAL_STATE_FIELDS
        assert "latencies" not in INTERVAL_FIELDS

    def test_result_state_round_trips_through_json(self, result):
        from repro.metrics import (
            result_from_state_dict,
            result_to_state_dict,
        )

        payload = json.loads(json.dumps(result_to_state_dict(result)))
        rebuilt = result_from_state_dict(payload, result.config)
        assert rebuilt == result
