"""Tests for interval metrics collection, series, and reports."""

import pytest

from repro.metrics import (
    IntervalRecord,
    MetricsCollector,
    area_under,
    first_index_reaching,
    format_comparison_table,
    format_interval_table,
    mean,
    series,
    smooth,
    summarise,
)
from repro.routing import Query
from repro.txn import Transaction
from repro.types import AccessMode, Priority, TxnKind


def normal_txn(txn_id, submitted=0.0, finished=1.0, cost=2.0):
    txn = Transaction(
        txn_id=txn_id,
        kind=TxnKind.NORMAL,
        queries=[Query("t", 1, AccessMode.READ)],
    )
    txn.first_submitted_at = submitted
    txn.finished_at = finished
    txn.normal_cost_units = cost
    return txn


def rep_txn(txn_id, priority=Priority.NORMAL, cost=1.0):
    from repro.partitioning import Migrate

    txn = Transaction(
        txn_id=txn_id,
        kind=TxnKind.REPARTITION,
        rep_ops=[Migrate(op_id=0, key=1, source=0, destination=1)],
        priority=priority,
    )
    txn.rep_cost_units = cost
    return txn


class TestIntervalRecord:
    def make(self, **kwargs):
        record = IntervalRecord(index=0, start=0.0, end=20.0)
        for key, value in kwargs.items():
            setattr(record, key, value)
        return record

    def test_throughput_txn_per_min(self):
        record = self.make(normal_committed=100)
        assert record.throughput_txn_per_min == pytest.approx(300.0)

    def test_failure_rate(self):
        record = self.make(submitted=10, aborted=3)
        assert record.failure_rate == pytest.approx(0.3)

    def test_failure_rate_empty_interval(self):
        assert self.make().failure_rate == 0.0

    def test_rep_rate(self):
        record = self.make(rep_ops_applied_cumulative=30, rep_ops_total=120)
        assert record.rep_rate == pytest.approx(0.25)

    def test_rep_rate_without_plan(self):
        assert self.make().rep_rate == 0.0

    def test_mean_latency(self):
        record = self.make(latency_sum=3.0, latency_count=2)
        assert record.mean_latency_s == pytest.approx(1.5)
        assert record.mean_latency_ms == pytest.approx(1500.0)

    def test_pv_ratios(self):
        record = self.make(
            normal_cost=100.0, rep_cost_high=5.0, rep_cost_piggyback=10.0
        )
        assert record.pv_ratio == pytest.approx(0.05)
        assert record.pv_ratio_with_piggyback == pytest.approx(0.15)

    def test_pv_ratio_zero_normal_cost(self):
        assert self.make(rep_cost_high=5.0).pv_ratio == 0.0

    def test_latency_percentile(self):
        record = self.make(latencies=[1.0, 2.0, 3.0, 4.0])
        assert record.latency_percentile(0) == 1.0
        assert record.latency_percentile(100) == 4.0
        assert record.latency_percentile(50) == pytest.approx(2.5)

    def test_percentile_validation(self):
        record = self.make(latencies=[1.0])
        with pytest.raises(ValueError):
            record.latency_percentile(101)


class TestMetricsCollector:
    def test_intervals_close_on_schedule(self, env):
        collector = MetricsCollector(env, interval_s=10.0)
        env.run(until=35)
        assert len(collector.intervals) == 3
        assert collector.intervals[0].start == 0.0
        assert collector.intervals[0].end == 10.0
        assert collector.intervals[2].index == 2

    def test_events_attributed_to_current_interval(self, env):
        collector = MetricsCollector(env, interval_s=10.0)

        def activity():
            collector.record_submitted(normal_txn(1))
            yield env.timeout(12)
            collector.record_submitted(normal_txn(2))
            collector.record_committed(normal_txn(2, 12, 13))

        env.process(activity())
        env.run(until=25)
        first, second = collector.intervals
        assert first.submitted == 1
        assert second.submitted == 1
        assert second.normal_committed == 1
        assert second.latency_count == 1

    def test_rep_costs_split_by_priority(self, env):
        collector = MetricsCollector(env, interval_s=10.0)
        collector.record_committed(rep_txn(1, Priority.NORMAL, 5.0))
        collector.record_committed(rep_txn(2, Priority.LOW, 7.0))
        collector.record_committed(rep_txn(3, Priority.HIGH, 2.0))
        env.run(until=10)
        record = collector.intervals[0]
        assert record.rep_cost_high == pytest.approx(7.0)  # NORMAL+HIGH
        assert record.rep_cost_low == pytest.approx(7.0)
        assert record.rep_committed == 3

    def test_piggybacked_cost_tracked(self, env):
        collector = MetricsCollector(env, interval_s=10.0)
        carrier = normal_txn(1)
        carrier.rep_cost_units = 3.0
        collector.record_committed(carrier)
        env.run(until=10)
        record = collector.intervals[0]
        assert record.rep_cost_piggyback == pytest.approx(3.0)
        assert record.normal_cost == pytest.approx(2.0)

    def test_rep_ops_progress_snapshot(self, env):
        collector = MetricsCollector(env, interval_s=10.0)
        collector.set_rep_ops_total(4)

        def activity():
            collector.record_rep_op_applied()
            yield env.timeout(12)
            collector.record_rep_op_applied()
            collector.record_rep_op_applied()

        env.process(activity())
        env.run(until=25)
        assert collector.intervals[0].rep_rate == pytest.approx(0.25)
        assert collector.intervals[1].rep_rate == pytest.approx(0.75)

    def test_observers_called_with_closed_record(self, env):
        collector = MetricsCollector(env, interval_s=10.0)
        seen = []
        collector.interval_observers.append(
            lambda record: seen.append(record.index)
        )
        env.run(until=30)
        assert seen == [0, 1, 2]

    def test_queue_probe_sampled_at_close(self, env):
        values = iter([5, 9])
        collector = MetricsCollector(
            env, interval_s=10.0, queue_length_probe=lambda: next(values)
        )
        env.run(until=20)
        assert [r.queue_length_end for r in collector.intervals] == [5, 9]

    def test_queue_probe_wired_after_construction(self, env):
        """The TM is built after the collector; the probe arrives late."""
        collector = MetricsCollector(env, interval_s=10.0)
        values = iter([3, 7])
        collector.set_queue_length_probe(lambda: next(values))
        env.run(until=20)
        assert [r.queue_length_end for r in collector.intervals] == [3, 7]

    def test_non_callable_probe_rejected(self, env):
        collector = MetricsCollector(env, interval_s=10.0)
        with pytest.raises(TypeError):
            collector.set_queue_length_probe(42)

    def test_invalid_interval_rejected(self, env):
        with pytest.raises(ValueError):
            MetricsCollector(env, interval_s=0)


class TestSeriesHelpers:
    def make_records(self, values):
        records = []
        for i, value in enumerate(values):
            record = IntervalRecord(index=i, start=0, end=20)
            record.normal_committed = value
            records.append(record)
        return records

    def test_series_extraction(self):
        records = self.make_records([1, 2, 3])
        assert series(records, "normal_committed") == [1.0, 2.0, 3.0]

    def test_mean_and_area(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert area_under([1.0, 2.0]) == 3.0

    def test_smooth_window(self):
        assert smooth([0.0, 10.0, 0.0], window=3) == [5.0, 10 / 3, 5.0]
        assert smooth([1.0, 2.0], window=1) == [1.0, 2.0]
        with pytest.raises(ValueError):
            smooth([1.0], window=0)

    def test_first_index_reaching(self):
        assert first_index_reaching([0.1, 0.5, 1.0], 1.0) == 2
        assert first_index_reaching([0.1], 1.0) == -1


class TestReports:
    def make_records(self):
        records = []
        for i in range(3):
            record = IntervalRecord(index=i, start=20.0 * i,
                                    end=20.0 * (i + 1))
            record.submitted = 10
            record.normal_committed = 5 + i
            record.aborted = 1
            records.append(record)
        return records

    def test_interval_table_contains_rows(self):
        text = format_interval_table(self.make_records())
        assert "RepRate" in text
        assert len(text.splitlines()) == 5

    def test_comparison_table_has_all_schedulers(self):
        results = {"Hybrid": self.make_records(),
                   "ApplyAll": self.make_records()}
        text = format_comparison_table(
            results, "throughput_txn_per_min", title="Fig X", every=1
        )
        assert "Hybrid" in text and "ApplyAll" in text
        assert "Fig X" in text
        assert "mean" in text

    def test_summarise_keys(self):
        summary = summarise(self.make_records())
        assert summary["total_committed"] == 18.0
        assert summary["mean_failure_rate"] == pytest.approx(0.1)
        assert "mean_throughput_txn_per_min" in summary
