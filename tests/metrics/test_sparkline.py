"""Tests for the sparkline renderer."""

from repro.metrics import IntervalRecord, format_sparkline_panel, sparkline


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_ramp_is_monotone(self):
        art = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert art == "".join(sorted(art))

    def test_extremes_use_extreme_blocks(self):
        art = sparkline([0.0, 1.0])
        assert art[0] == "▁"
        assert art[-1] == "█"

    def test_length_matches_input(self):
        assert len(sparkline(list(range(17)))) == 17

    def test_negative_values_handled(self):
        art = sparkline([-3.0, 0.0, 3.0])
        assert art[0] == "▁" and art[-1] == "█"


class TestSparklinePanel:
    def make_records(self, values):
        records = []
        for i, value in enumerate(values):
            record = IntervalRecord(index=i, start=0, end=20)
            record.normal_committed = value
            records.append(record)
        return records

    def test_panel_has_line_per_scheduler(self):
        panel = format_sparkline_panel(
            {
                "Hybrid": self.make_records([1, 5, 9]),
                "AfterAll": self.make_records([1, 1, 1]),
            },
            "normal_committed",
            title="Demo",
        )
        lines = panel.splitlines()
        assert lines[0] == "Demo"
        assert len(lines) == 3
        assert "min=1 max=9" in lines[1]

    def test_empty_records(self):
        panel = format_sparkline_panel(
            {"Hybrid": []}, "normal_committed"
        )
        assert "no data" in panel
