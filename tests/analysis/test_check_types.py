"""Unit tests for the mypy-gate plumbing in tools/check_types.py.

mypy itself is not a runtime dependency (and may be absent locally), so
these tests exercise the normalisation/diff logic on canned output --
the part that decides whether CI goes red.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_check_types():
    spec = importlib.util.spec_from_file_location(
        "check_types", REPO_ROOT / "tools" / "check_types.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_types", module)
    spec.loader.exec_module(module)
    return module


check_types = _load_check_types()

FAKE_OUTPUT = """\
src/repro/sim/environment.py:42:9: error: Missing type annotation  [var-annotated]
src/repro/routing/epoch.py:10: error: Returning Any  [no-any-return]
src/repro/routing/epoch.py:99: note: See https://mypy.readthedocs.io
Found 2 errors in 2 files (checked 5 source files)
"""


class TestNormalize:
    def test_strips_line_and_column(self) -> None:
        assert check_types.normalize(
            "src/a.py:42:9: error: boom  [code]"
        ) == "src/a.py: error: boom  [code]"
        assert check_types.normalize(
            "src/a.py:42: error: boom  [code]"
        ) == "src/a.py: error: boom  [code]"

    def test_drops_notes_summaries_and_blanks(self) -> None:
        assert check_types.normalize("") is None
        assert check_types.normalize("Found 2 errors in 2 files") is None
        assert check_types.normalize("Success: no issues found") is None
        assert check_types.normalize("src/a.py:9: note: hint") is None

    def test_normalize_output_sorts_and_filters(self) -> None:
        assert check_types.normalize_output(FAKE_OUTPUT) == [
            "src/repro/routing/epoch.py: error: Returning Any  "
            "[no-any-return]",
            "src/repro/sim/environment.py: error: Missing type annotation  "
            "[var-annotated]",
        ]


class TestDiff:
    def test_clean_run_against_empty_baseline(self) -> None:
        assert check_types.diff_against_baseline([], []) == ([], [])

    def test_baselined_errors_tolerated_new_ones_not(self) -> None:
        errors = ["a: error: old  [x]", "b: error: new  [y]"]
        new, stale = check_types.diff_against_baseline(
            errors, ["a: error: old  [x]"]
        )
        assert new == ["b: error: new  [y]"]
        assert stale == []

    def test_fixed_errors_reported_stale(self) -> None:
        new, stale = check_types.diff_against_baseline(
            [], ["a: error: gone  [x]"]
        )
        assert new == []
        assert stale == ["a: error: gone  [x]"]

    def test_duplicate_errors_need_duplicate_baseline_entries(self) -> None:
        errors = ["a: error: dup  [x]"] * 2
        new, _ = check_types.diff_against_baseline(
            errors, ["a: error: dup  [x]"]
        )
        assert new == ["a: error: dup  [x]"]


def test_checked_in_baseline_is_empty() -> None:
    """The strict core currently carries zero tolerated debt.

    If you are here because this failed: prefer fixing the new mypy
    error over adding the first baseline entry.
    """
    baseline = REPO_ROOT / "tools" / "mypy-baseline.txt"
    assert baseline.exists()
    entries = [
        line
        for line in baseline.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]
    assert entries == []


def test_gate_skips_cleanly_when_mypy_missing(monkeypatch, capsys) -> None:
    monkeypatch.setattr(check_types.shutil, "which", lambda _: None)

    class _Proc:
        returncode = 1

    def fake_run(cmd, **kwargs):
        assert "import mypy" in cmd[-1]
        return _Proc()

    monkeypatch.setattr(check_types.subprocess, "run", fake_run)
    assert check_types.main([]) == 0
    assert "skipping" in capsys.readouterr().err
