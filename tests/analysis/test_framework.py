"""Framework behaviour: suppressions, baselines, CLI, registry."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    REGISTRY,
    Finding,
    all_rules,
    analyze_sources,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.cli import collect_files, main

SIM_VIOLATION = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)
SIM_PATH = "src/repro/sim/stamp.py"


class TestRegistry:
    def test_all_seven_rules_registered(self) -> None:
        codes = {rule.code for rule in all_rules()}
        assert codes == {
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
        }

    def test_rules_carry_descriptions(self) -> None:
        for rule in all_rules():
            assert rule.name
            assert len(rule.description) > 40

    def test_select_unknown_code_raises(self) -> None:
        with pytest.raises(ValueError, match="RPR999"):
            analyze_sources({SIM_PATH: SIM_VIOLATION}, select=["RPR999"])

    def test_select_restricts_rules(self) -> None:
        result = analyze_sources(
            {SIM_PATH: SIM_VIOLATION}, select=["RPR004"]
        )
        assert result.findings == []
        result = analyze_sources(
            {SIM_PATH: SIM_VIOLATION}, select=["RPR001"]
        )
        assert [f.code for f in result.findings] == ["RPR001"]
        assert REGISTRY["RPR001"].code == "RPR001"


class TestSuppressions:
    def test_justified_suppression_applies(self) -> None:
        source = SIM_VIOLATION.replace(
            "time.time()",
            "time.time()  # repro-lint: disable=RPR001 -- boot banner",
        )
        result = analyze_sources({SIM_PATH: source})
        assert result.findings == []
        assert [f.code for f in result.suppressed] == ["RPR001"]

    def test_suppression_on_other_line_does_not_apply(self) -> None:
        source = (
            "import time\n"
            "# repro-lint: disable=RPR001 -- wrong line\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        result = analyze_sources({SIM_PATH: source})
        assert [f.code for f in result.findings] == ["RPR001"]

    def test_unjustified_suppression_is_flagged_and_ignored(self) -> None:
        source = SIM_VIOLATION.replace(
            "time.time()", "time.time()  # repro-lint: disable=RPR001"
        )
        result = analyze_sources({SIM_PATH: source})
        assert sorted(f.code for f in result.findings) == [
            "RPR000",
            "RPR001",
        ]

    def test_rpr000_cannot_be_suppressed(self) -> None:
        source = (
            "x = 1  # repro-lint: disable=RPR000 -- trying to gag the meta\n"
        )
        result = analyze_sources({"src/repro/sim/x.py": source})
        assert [f.code for f in result.findings] == ["RPR000"]

    def test_directive_in_docstring_is_not_a_directive(self) -> None:
        source = (
            '"""Docs may mention repro-lint: disable=RPR001 freely."""\n'
            "x = 1\n"
        )
        result = analyze_sources({"src/repro/sim/doc.py": source})
        assert result.findings == []

    def test_syntax_error_reports_rpr000(self) -> None:
        result = analyze_sources({"src/repro/sim/broken.py": "def f(:\n"})
        assert [f.code for f in result.findings] == ["RPR000"]
        assert "does not parse" in result.findings[0].message


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path: Path) -> None:
        findings = [
            Finding("src/a.py", 3, 1, "RPR001", "msg one"),
            Finding("src/b.py", 7, 1, "RPR005", "msg two"),
        ]
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, baseline_file)
        baseline = load_baseline(baseline_file)
        # Same findings at different lines still match (burn-down is
        # keyed on path+code+message, not position).
        moved = [
            Finding("src/a.py", 30, 1, "RPR001", "msg one"),
            Finding("src/c.py", 1, 1, "RPR001", "brand new"),
        ]
        new, matched, stale = split_by_baseline(moved, baseline)
        assert [f.message for f in new] == ["brand new"]
        assert [f.message for f in matched] == ["msg one"]
        assert sum(stale.values()) == 1  # msg two no longer fires

    def test_rpr000_never_baselined(self, tmp_path: Path) -> None:
        meta = Finding("src/a.py", 1, 1, "RPR000", "bad directive")
        baseline_file = tmp_path / "baseline.json"
        write_baseline([meta], baseline_file)
        assert load_baseline(baseline_file) == {}
        new, matched, _ = split_by_baseline(
            [meta], load_baseline(baseline_file)
        )
        assert new == [meta]
        assert matched == []

    def test_missing_baseline_file_is_empty(self, tmp_path: Path) -> None:
        assert load_baseline(tmp_path / "absent.json") == {}


@pytest.fixture
def violation_tree(tmp_path: Path) -> Path:
    """A mini repo with one sim-path violation at the usual layout."""
    sim_dir = tmp_path / "src" / "repro" / "sim"
    sim_dir.mkdir(parents=True)
    (sim_dir / "stamp.py").write_text(SIM_VIOLATION, encoding="utf-8")
    return tmp_path


class TestCli:
    def test_exit_zero_on_clean_tree(
        self, tmp_path: Path, monkeypatch, capsys
    ) -> None:
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 0

    def test_exit_one_and_ruff_style_line(
        self, violation_tree: Path, monkeypatch, capsys
    ) -> None:
        monkeypatch.chdir(violation_tree)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("src/repro/sim/stamp.py:4:12: RPR001 ")

    def test_json_format(
        self, violation_tree: Path, monkeypatch, capsys
    ) -> None:
        monkeypatch.chdir(violation_tree)
        assert main(["--format=json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        [finding] = payload["findings"]
        assert finding["code"] == "RPR001"
        assert finding["path"] == "src/repro/sim/stamp.py"
        assert finding["line"] == 4

    def test_baseline_burns_down(
        self, violation_tree: Path, monkeypatch, capsys
    ) -> None:
        monkeypatch.chdir(violation_tree)
        assert (
            main(["--baseline", "baseline.json", "--write-baseline", "src"])
            == 0
        )
        # With the baseline in place the same tree is green...
        assert main(["--baseline", "baseline.json", "src"]) == 0
        # ...but a fresh violation still fails.
        extra = violation_tree / "src" / "repro" / "sim" / "extra.py"
        extra.write_text(
            "import os\n\ndef salt():\n    return os.urandom(4)\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["--baseline", "baseline.json", "src"]) == 1
        out = capsys.readouterr().out
        assert "extra.py" in out
        assert "stamp.py" not in out

    def test_stale_baseline_noted(
        self, violation_tree: Path, monkeypatch, capsys
    ) -> None:
        monkeypatch.chdir(violation_tree)
        assert (
            main(["--baseline", "baseline.json", "--write-baseline", "src"])
            == 0
        )
        stamp = violation_tree / "src" / "repro" / "sim" / "stamp.py"
        stamp.write_text("x = 1\n", encoding="utf-8")
        capsys.readouterr()
        assert main(["--baseline", "baseline.json", "src"]) == 0
        assert "stale baseline" in capsys.readouterr().err

    def test_write_baseline_requires_baseline_path(self, capsys) -> None:
        assert main(["--write-baseline", "src"]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch) -> None:
        monkeypatch.chdir(tmp_path)
        assert main(["does-not-exist"]) == 2

    def test_no_paths_is_usage_error(self) -> None:
        assert main([]) == 2

    def test_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
            assert code in out

    def test_fixture_directories_are_never_scanned(
        self, tmp_path: Path, monkeypatch
    ) -> None:
        bad = tmp_path / "tests" / "x" / "fixtures"
        bad.mkdir(parents=True)
        (bad / "violation.py").write_text(
            "import time\nT = time.time()\n", encoding="utf-8"
        )
        monkeypatch.chdir(tmp_path)
        assert collect_files(["tests"]) == []
        assert main(["tests"]) == 0
