"""Shared helpers for the repro-lint test corpus.

Fixture files carry a ``# virtual-path:`` header assigning the logical
repository path the rules should scope them under, so deliberate
violations can live in ``tests/analysis/fixtures/`` without ever being
picked up by a real lint run (the CLI skips ``fixtures`` directories).

Golden files hold the expected ruff-style output.  Regenerate them
after an intentional rule change with::

    REPRO_LINT_REGEN=1 python -m pytest tests/analysis/test_golden.py

and review the diff like any other code change.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.analysis import AnalysisResult, analyze_sources

FIXTURES = Path(__file__).resolve().parent / "fixtures"

_VIRTUAL_PATH_RE = re.compile(r"^#\s*virtual-path:\s*(?P<path>\S+)\s*$")

REGEN = os.environ.get("REPRO_LINT_REGEN") == "1"


def virtual_path(source: str, fixture: Path) -> str:
    """The logical path declared on the fixture's first line."""
    first_line = source.splitlines()[0] if source else ""
    match = _VIRTUAL_PATH_RE.match(first_line)
    if match is None:
        raise AssertionError(
            f"{fixture}: missing '# virtual-path: <logical path>' header"
        )
    return match.group("path")


def load_sources(fixture: Path) -> dict[str, str]:
    """Fixture sources keyed by virtual path.

    A file fixture yields one module; a directory fixture yields one
    module per ``*.py`` file inside it (cross-file project rules).
    """
    files = sorted(fixture.glob("*.py")) if fixture.is_dir() else [fixture]
    sources: dict[str, str] = {}
    for file in files:
        text = file.read_text(encoding="utf-8")
        sources[virtual_path(text, file)] = text
    if not sources:
        raise AssertionError(f"{fixture}: no fixture sources found")
    return sources


def analyze_fixture(fixture: Path) -> AnalysisResult:
    return analyze_sources(load_sources(fixture))


def rendered_findings(result: AnalysisResult) -> str:
    return "\n".join(f.format_text() for f in result.findings)


def expected_path(fixture: Path) -> Path:
    if fixture.is_dir():
        return fixture / "expected.txt"
    return fixture.with_suffix(".expected")


def check_golden(fixture: Path) -> None:
    """Compare (or, under REPRO_LINT_REGEN=1, rewrite) the golden file."""
    actual = rendered_findings(analyze_fixture(fixture))
    golden = expected_path(fixture)
    if REGEN:
        golden.write_text(actual + ("\n" if actual else ""), encoding="utf-8")
        return
    expected = (
        golden.read_text(encoding="utf-8").rstrip("\n")
        if golden.exists()
        else ""
    )
    assert actual == expected, (
        f"{fixture.name}: findings diverge from {golden.name}\n"
        f"--- expected ---\n{expected}\n--- actual ---\n{actual}\n"
        "(regenerate with REPRO_LINT_REGEN=1 if the change is intentional)"
    )
