"""The repo must pass its own linter (acceptance criterion for the tool).

This is the same invocation CI runs; keeping it in tier-1 means a
violation fails locally before it ever reaches the blocking CI job.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_clean_under_own_linter(
    monkeypatch: pytest.MonkeyPatch,
    capsys: pytest.CaptureFixture[str],
) -> None:
    monkeypatch.chdir(REPO_ROOT)
    exit_code = main(["src", "tests", "benchmarks"])
    captured = capsys.readouterr()
    assert exit_code == 0, (
        "repro-lint found violations in the tree:\n" + captured.out
    )
    assert "0 finding(s)" in captured.err
