# virtual-path: src/repro/experiments/config.py
"""Fixture: ExperimentConfig grew a nested config field that is not
registered for the dict round trip."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterConfig:
    node_count: int = 5


@dataclass(frozen=True)
class RuntimeConfig:
    interval_s: float = 20.0


@dataclass(frozen=True)
class ReplicaPolicyConfig:
    max_replicas: int = 3


@dataclass(frozen=True)
class ExperimentConfig:
    name: str = "experiment"
    seed: int = 0
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    replica_policy: ReplicaPolicyConfig = field(
        default_factory=ReplicaPolicyConfig
    )


_NESTED_CONFIG_TYPES = {
    "cluster": ClusterConfig,
    "runtime": RuntimeConfig,
}


def _field_from_dict(name, value):
    nested = _NESTED_CONFIG_TYPES.get(name)
    if nested is not None:
        return nested(**value)
    return value
