# virtual-path: src/repro/experiments/cache.py
"""Fixture: a sound canonical key (full asdict + schema version)."""

import dataclasses
import hashlib
import json

CACHE_SCHEMA_VERSION = 3


def config_key(config):
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
