# virtual-path: src/repro/sim/environment.py
"""Fixture: loop-carried cursor write-back with and without finally."""


class Scheduler:
    def __init__(self):
        self._bucket = []
        self._pos = 0

    def drain_unguarded(self, horizon):
        bucket = self._bucket
        pos = self._pos
        while pos < len(bucket):
            entry = bucket[pos]
            if entry[0] > horizon:
                break
            pos += 1
            entry[1]()
        self._pos = pos

    def drain_guarded(self, horizon):
        bucket = self._bucket
        pos = self._pos
        try:
            while pos < len(bucket):
                entry = bucket[pos]
                if entry[0] > horizon:
                    break
                pos += 1
                entry[1]()
        finally:
            self._pos = pos

    def read_only_peek(self):
        pos = self._pos
        if pos < len(self._bucket):
            return self._bucket[pos][0]
        return None

    def resync_in_loop(self):
        while True:
            pos = self._pos
            if pos >= len(self._bucket):
                return None
            self._pos = pos + 1
            return self._bucket[pos]
