# virtual-path: src/repro/core/injected_clean.py
"""Fixture: injected streams are the sanctioned pattern."""

import random
from typing import Optional


class Component:
    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def flip(self, p: float) -> bool:
        return self.rng.random() < p


def build(streams, name: str, rng: Optional[random.Random] = None):
    return Component(rng if rng is not None else streams.stream(name))
