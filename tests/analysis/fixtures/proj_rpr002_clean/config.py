# virtual-path: src/repro/experiments/config.py
"""Fixture: fully wired config — registry plus special case cover every
nested field."""

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ClusterConfig:
    node_count: int = 5


@dataclass(frozen=True)
class FaultScheduleConfig:
    mtbf_s: float = 0.0


@dataclass(frozen=True)
class ExperimentConfig:
    name: str = "experiment"
    seed: int = 0
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    faults: Optional[FaultScheduleConfig] = None


_NESTED_CONFIG_TYPES = {
    "cluster": ClusterConfig,
}


def _field_from_dict(name, value):
    if name == "faults":
        return None if value is None else FaultScheduleConfig(**value)
    nested = _NESTED_CONFIG_TYPES.get(name)
    if nested is not None:
        return nested(**value)
    return value
