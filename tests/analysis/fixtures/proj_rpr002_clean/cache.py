# virtual-path: src/repro/experiments/cache.py
"""Fixture: sound canonical key."""

import dataclasses
import hashlib
import json

CACHE_SCHEMA_VERSION = 1


def config_key(config):
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
