# virtual-path: src/repro/sim/justified.py
"""Fixture: a justified suppression silences the finding."""

import time


def boot_banner():
    # Printed once before the sim starts; never feeds simulation state.
    return time.time()  # repro-lint: disable=RPR001 -- log banner only, result never enters sim state
