# virtual-path: src/repro/experiments/config.py
"""Fixture: config whose cache key hashes an explicit field subset."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RuntimeConfig:
    interval_s: float = 20.0


@dataclass(frozen=True)
class ExperimentConfig:
    name: str = "experiment"
    seed: int = 0
    alpha: float = 1.0
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)


_NESTED_CONFIG_TYPES = {
    "runtime": RuntimeConfig,
}
