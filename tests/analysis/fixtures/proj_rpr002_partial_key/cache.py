# virtual-path: src/repro/experiments/cache.py
"""Fixture: config_key hand-rolls the hashed dict and misses fields —
``alpha`` and ``runtime`` never invalidate the cache — and forgets the
schema version."""

import hashlib
import json


def config_key(config):
    payload = json.dumps(
        {
            "name": config.name,
            "seed": config.seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
