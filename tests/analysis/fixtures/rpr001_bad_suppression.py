# virtual-path: src/repro/sim/unjustified.py
"""Fixture: suppressions without justification do not suppress."""

import time


def sloppy():
    return time.time()  # repro-lint: disable=RPR001


def wrong_code():
    return time.time()  # repro-lint: disable=BOGUS -- not a real code
