# virtual-path: src/repro/experiments/membership_clean.py
"""Fixture: the sanctioned membership workflow."""

from repro.cluster.node import NodeState


def scale_out(cluster, count):
    joined = [cluster.add_node() for _ in range(count)]
    for node in joined:
        cluster.activate(node.node_id)
    return joined


def drain_and_retire(cluster, node_id):
    cluster.begin_drain(node_id)
    if len(cluster.node(node_id).store) == 0:
        cluster.retire(node_id)


def census(cluster):
    active = cluster.nodes_in(NodeState.ACTIVE)
    return len(active), cluster.state_counts()
