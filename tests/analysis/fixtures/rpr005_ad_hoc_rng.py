# virtual-path: src/repro/core/ad_hoc_rng.py
"""Fixture: ad-hoc RNG construction anywhere under src/repro."""

import random

import numpy as np


class NoisyComponent:
    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.entropy = random.SystemRandom()
        self.np_rng = np.random.default_rng(seed)


def make_stream(seed):
    return random.Random(seed)
