# virtual-path: src/repro/sim/clocky.py
"""Fixture: every flavour of ambient nondeterminism RPR001 catches."""

import os
import random
import time
from datetime import datetime


def stamp_arrival(event):
    event.at = time.time()
    event.wall = datetime.now()
    return event


def jitter():
    return random.random() * 0.5 + random.gauss(0.0, 1.0)


def salt():
    return os.urandom(8)


def drain(pending: set):
    for key in {1, 2, 3}:
        yield key
    for key in set(pending):
        yield key
    total = sum(x for x in {4, 5})
    return total
