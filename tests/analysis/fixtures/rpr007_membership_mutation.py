# virtual-path: src/repro/experiments/membership_mutation.py
"""Fixture: mutating the node set / lifecycle outside the cluster API."""

from repro.cluster.node import DataNode, NodeState


def flip_lifecycle_by_hand(cluster):
    node = cluster.nodes[0]
    node.state = NodeState.DRAINING
    node.retired = True


def splice_node_set(cluster, node):
    cluster.nodes.append(node)
    cluster.nodes.pop()
    cluster._by_partition[node.partition_id] = node
    del cluster._by_partition[node.partition_id]


def forge_node(env, detector):
    return DataNode(
        env,
        node_id=99,
        partition_id=99,
        capacity_units_per_s=40.0,
        max_connections=100,
        detector=detector,
    )


def reads_are_fine(cluster):
    first = cluster.nodes[0]
    count = len(cluster.nodes)
    return first.state, first.retired, count
