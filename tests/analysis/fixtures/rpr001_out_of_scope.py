# virtual-path: src/repro/experiments/wallclock_report.py
"""Fixture: wall-clock use outside the sim scope is RPR001-clean
(experiment reporting legitimately measures real elapsed time)."""

import time


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
