# virtual-path: src/repro/txn/epoch_mutation.py
"""Fixture: mutating published epochs / the live map outside the store."""

from repro.routing.epoch import MapEpoch


def clobber_pinned(store):
    epoch = store.pin()
    epoch.epoch_id = 99
    return epoch


def clobber_current(store):
    store.current_epoch.epoch_id = 0


def clobber_param(epoch: MapEpoch) -> None:
    epoch._store = None


def bypass_staging(store, key, partitions):
    store.live_map.set_replicas(key, partitions)
    store.live_map.move(key, partitions[0], partitions[1])


def reassigned_is_fine(store):
    epoch = store.pin()
    state = epoch.partition_sizes()
    epoch = dict(state)  # rebinding the name drops the epoch inference
    epoch["x"] = 1
    return epoch
