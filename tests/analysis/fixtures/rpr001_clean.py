# virtual-path: src/repro/sim/clean_stream_use.py
"""Fixture: deterministic sim-path code RPR001 must not flag."""

import random
from typing import Optional


class ArrivalProcess:
    def __init__(self, rng: random.Random, keys: set) -> None:
        self.rng = rng
        self.keys = keys

    def next_delay(self) -> float:
        return self.rng.expovariate(1.0)

    def drain_sorted(self):
        for key in sorted(self.keys):
            yield key
        for key in sorted({3, 1, 2}):
            yield key


def membership(x: int, allowed: Optional[set] = None) -> bool:
    return x in (allowed or {1, 2, 3})
