# virtual-path: src/repro/sim/events.py
"""Fixture: hot-path classes with and without __slots__."""

import enum
from dataclasses import dataclass


class EventState(enum.Enum):
    PENDING = "pending"


class SlottedEvent:
    __slots__ = ("env", "callbacks")

    def __init__(self, env):
        self.env = env
        self.callbacks = []


@dataclass(slots=True)
class SlottedRecord:
    key: int
    value: int = 0


class SimulationTimeout(Exception):
    pass


class UnslottedEvent:
    def __init__(self, env):
        self.env = env


@dataclass
class UnslottedRecord:
    key: int
