# virtual-path: src/repro/txn/epoch_clean.py
"""Fixture: reading epochs and staging changes is the sanctioned path."""


def route(store, key):
    epoch = store.pin()
    try:
        return epoch.primary_of(key)
    finally:
        store.unpin(epoch)


def relocate(store, key, source, destination):
    stage = store.begin_stage()
    stage.mark_moving(key)
    stage.move(key, source, destination)
    return store.publish(stage)


def inspect(store):
    sizes = store.current_epoch.partition_sizes()
    live_size = len(store.live_map)
    return sizes, live_size
