"""RPR002 hardening: prove the cache-key soundness net actually closes.

Two layers must both catch a new ExperimentConfig field:

1. **Static** — RPR002 cross-checks the dataclass against the
   deserialisation map, so a nested-config field added without a
   ``_NESTED_CONFIG_TYPES`` entry fails the lint on the *real* cache
   module (no synthetic cache needed).
2. **Runtime** — ``config_key`` hashes ``dataclasses.asdict`` of the
   whole config, so any extra field changes the key.  There is no
   "forgot to add it to the key" failure mode, which is exactly why the
   rule only has to police the deserialisation side.

The injection happens on an in-memory *copy* of the real sources; the
files on disk are untouched.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.analysis import analyze_sources
from repro.experiments.cache import config_key
from repro.experiments.config import ExperimentConfig

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIG_PATH = "src/repro/experiments/config.py"
CACHE_PATH = "src/repro/experiments/cache.py"

SENTINEL_FIELD = "    name: str = \"experiment\"\n"
SYNTHETIC_FIELD = (
    "    name: str = \"experiment\"\n"
    "    shadow: ShadowConfig = field(default_factory=lambda: None)\n"
)


def _real_sources() -> dict[str, str]:
    return {
        CONFIG_PATH: (REPO_ROOT / CONFIG_PATH).read_text(encoding="utf-8"),
        CACHE_PATH: (REPO_ROOT / CACHE_PATH).read_text(encoding="utf-8"),
    }


def _rpr002(sources: dict[str, str]) -> list[str]:
    result = analyze_sources(sources, select=["RPR002"])
    return [f.format_text() for f in result.findings]


def test_real_tree_is_rpr002_clean() -> None:
    assert _rpr002(_real_sources()) == []


def test_synthetic_extra_field_trips_the_rule() -> None:
    """Adding a nested-config field without wiring deserialisation fails."""
    sources = _real_sources()
    assert SENTINEL_FIELD in sources[CONFIG_PATH], (
        "ExperimentConfig layout changed; update the injection anchor"
    )
    sources[CONFIG_PATH] = sources[CONFIG_PATH].replace(
        SENTINEL_FIELD, SYNTHETIC_FIELD, 1
    )
    findings = _rpr002(sources)
    assert len(findings) == 1
    assert "shadow" in findings[0]
    assert "RPR002" in findings[0]


def test_gutted_config_key_trips_the_rule() -> None:
    """A hand-rolled partial key (not asdict) must list every field."""
    sources = _real_sources()
    sources[CACHE_PATH] = sources[CACHE_PATH].replace(
        '"config": dataclasses.asdict(config),',
        '"config": {"name": config.name, "seed": config.seed},',
        1,
    )
    findings = _rpr002(sources)
    assert len(findings) == 1
    assert "scheduler" in findings[0]  # one of the dropped fields


def test_runtime_cache_key_covers_extra_fields() -> None:
    """``config_key`` hashes asdict(), so new fields change the key.

    This is the runtime half of the invariant: the key derivation can
    never silently ignore a field, so no cache-schema bump is needed
    when fields are added -- only the deserialisation map (which RPR002
    polices) can fall behind.
    """
    Extended = dataclasses.make_dataclass(
        "ExperimentConfig",
        [("extra_knob", float, dataclasses.field(default=0.0))],
        bases=(ExperimentConfig,),
        frozen=True,
    )
    base = ExperimentConfig(name="hardening", seed=7)
    same = Extended(name="hardening", seed=7, extra_knob=0.0)
    other = Extended(name="hardening", seed=7, extra_knob=1.5)
    # The extra field feeds the hash: flipping only it changes the key.
    assert config_key(same) != config_key(other)
    # And its mere presence separates the extended config from the base.
    assert config_key(base) != config_key(same)
