"""Golden-file corpus: every rule, positive and negative fixtures.

Each fixture (file, or directory for cross-file project rules) pairs
with a golden file holding the exact expected findings; an empty golden
file asserts the fixture is clean.  See ``harness.py`` for the
regeneration workflow.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from .harness import FIXTURES, analyze_fixture, check_golden, expected_path


def _fixture_cases() -> list[Path]:
    cases = [p for p in sorted(FIXTURES.glob("*.py"))]
    cases.extend(p for p in sorted(FIXTURES.iterdir()) if p.is_dir())
    return cases


CASES = _fixture_cases()


def test_corpus_is_nonempty() -> None:
    assert len(CASES) >= 10


def test_every_rule_has_fixture_coverage() -> None:
    """All seven RPR rules appear in at least one golden file."""
    covered = set()
    for case in CASES:
        golden = expected_path(case)
        if golden.exists():
            for line in golden.read_text().splitlines():
                for code in ("RPR00%d" % i for i in range(8)):
                    if f" {code} " in line:
                        covered.add(code)
    assert {
        "RPR000",
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
        "RPR007",
    } <= covered


@pytest.mark.parametrize("case", CASES, ids=lambda p: p.name)
def test_golden(case: Path) -> None:
    check_golden(case)


def test_suppressed_findings_are_counted_not_dropped() -> None:
    result = analyze_fixture(FIXTURES / "rpr001_suppressed.py")
    assert result.findings == []
    assert len(result.suppressed) == 1
    assert result.suppressed[0].code == "RPR001"


def test_clean_fixtures_have_no_suppressions_in_play() -> None:
    result = analyze_fixture(FIXTURES / "rpr001_clean.py")
    assert result.findings == []
    assert result.suppressed == []
