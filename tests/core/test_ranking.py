"""Tests for Algorithm 1: generating and ranking repartition transactions."""

import pytest

from repro.core import generate_and_rank
from repro.partitioning import CostModel, PartitionPlan, diff_plan
from repro.routing import PartitionMap
from repro.workload import TransactionType, WorkloadProfile


def make_setup(frequencies=(5.0, 2.0, 1.0)):
    """Three disjoint 2-key types, all initially split across 0/1."""
    types = [
        TransactionType(i, (2 * i, 2 * i + 1), freq)
        for i, freq in enumerate(frequencies)
    ]
    profile = WorkloadProfile(table="t", types=types)
    pmap = PartitionMap()
    for ttype in types:
        pmap.assign(ttype.keys[0], 0)
        pmap.assign(ttype.keys[1], 1)
    plan = PartitionPlan()
    for ttype in types:
        plan.assign(ttype.keys[0], 0)
        plan.assign(ttype.keys[1], 0)  # collocate everything on 0
    ops = diff_plan(pmap, plan)
    return profile, pmap, plan, ops


class TestGrouping:
    def test_one_transaction_per_benefiting_type(self):
        profile, pmap, plan, ops = make_setup()
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        assert len(specs) == 3
        assert {spec.type_id for spec in specs} == {0, 1, 2}

    def test_every_op_in_exactly_one_transaction(self):
        profile, pmap, plan, ops = make_setup()
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        seen = [op.op_id for spec in specs for op in spec.ops]
        assert sorted(seen) == sorted(op.op_id for op in ops)
        assert len(seen) == len(set(seen))

    def test_ops_grouped_with_their_type(self):
        profile, pmap, plan, ops = make_setup()
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        for spec in specs:
            type_keys = set(profile.type(spec.type_id).keys)
            for op in spec.ops:
                assert op.key in type_keys


class TestBenefits:
    def test_benefit_is_frequency_times_improvement(self):
        profile, pmap, plan, ops = make_setup(frequencies=(5.0, 2.0, 1.0))
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        by_type = {spec.type_id: spec for spec in specs}
        # improvement is C(O)-C(P) = 2-1 = 1 for every type.
        assert by_type[0].benefit == pytest.approx(5.0)
        assert by_type[1].benefit == pytest.approx(2.0)
        assert by_type[2].benefit == pytest.approx(1.0)

    def test_ranked_by_descending_benefit_density(self):
        profile, pmap, plan, ops = make_setup(frequencies=(1.0, 9.0, 4.0))
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        densities = [spec.benefit_density for spec in specs]
        assert densities == sorted(densities, reverse=True)
        assert specs[0].type_id == 1  # hottest first

    def test_cost_is_rep_txn_cost(self):
        profile, pmap, plan, ops = make_setup()
        model = CostModel(rep_op_cost=3.0)
        specs = generate_and_rank(ops, plan, pmap, profile, model)
        for spec in specs:
            assert spec.cost == pytest.approx(3.0 * len(spec.ops))


class TestFiltering:
    def test_non_improving_types_excluded(self):
        """A type already collocated contributes no repartition txn."""
        types = [
            TransactionType(0, (0, 1), 5.0),   # split -> improves
            TransactionType(1, (2, 3), 9.0),   # already collocated
        ]
        profile = WorkloadProfile(table="t", types=types)
        pmap = PartitionMap()
        pmap.assign(0, 0)
        pmap.assign(1, 1)
        pmap.assign(2, 0)
        pmap.assign(3, 0)
        plan = PartitionPlan({0: 0, 1: 0})
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        assert [spec.type_id for spec in specs] == [0]

    def test_orphan_ops_packaged_as_leftover(self):
        """Ops touching no profiled type still get deployed (ranked last)."""
        profile = WorkloadProfile(
            table="t", types=[TransactionType(0, (0, 1), 1.0)]
        )
        pmap = PartitionMap()
        for key in range(4):
            pmap.assign(key, 0)
        pmap.move(1, 0, 1)
        plan = PartitionPlan({1: 0, 3: 1})  # key 3 belongs to no type
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        assert specs[-1].type_id == -1
        assert {op.key for op in specs[-1].ops} == {3}

    def test_empty_ops_give_empty_specs(self):
        profile = WorkloadProfile(
            table="t", types=[TransactionType(0, (0, 1), 1.0)]
        )
        pmap = PartitionMap()
        pmap.assign(0, 0)
        pmap.assign(1, 0)
        specs = generate_and_rank(
            [], PartitionPlan(), pmap, profile, CostModel()
        )
        assert specs == []


class TestSharedOps:
    def test_shared_op_consumed_by_hotter_type(self):
        """When two types share a key, the hotter group claims its op."""
        types = [
            TransactionType(0, (0, 1), 10.0),
            TransactionType(1, (1, 2), 1.0),  # shares key 1 with type 0
        ]
        profile = WorkloadProfile(table="t", types=types)
        pmap = PartitionMap()
        pmap.assign(0, 0)
        pmap.assign(1, 1)
        pmap.assign(2, 0)
        plan = PartitionPlan({1: 0})  # move key 1 home
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        # Only one op exists; it must appear exactly once, in the hot group.
        assert len(specs) == 1
        assert specs[0].type_id == 0
        assert len(specs[0].ops) == 1

    def test_rerun_resets_benefit_accumulators(self):
        profile, pmap, plan, ops = make_setup()
        first = generate_and_rank(ops, plan, pmap, profile, CostModel())
        second = generate_and_rank(ops, plan, pmap, profile, CostModel())
        for spec_a, spec_b in zip(first, second):
            assert spec_a.benefit == pytest.approx(spec_b.benefit)
