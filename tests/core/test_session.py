"""Tests for the repartition session's state machine."""

import pytest

from repro.core.session import RepState
from repro.types import Priority



class TestInitialState:
    def test_all_pending_initially(self, harness):
        session = harness.session()
        for rep_txn in session.rep_txns:
            assert session.state_of(rep_txn.txn_id) is RepState.PENDING
        assert session.unfinished_count() == len(session.rep_txns)
        assert not session.is_complete

    def test_trep_maps_types_to_transactions(self, harness):
        session = harness.session()
        assert set(session.trep) == {t.type_id for t in harness.profile.types}

    def test_ops_total_registered_with_metrics(self, harness):
        session = harness.session()
        assert harness.stack.metrics.rep_ops_total == session.ops_total
        assert session.ops_total == sum(
            len(t.rep_ops) for t in session.rep_txns
        )

    def test_rep_txns_in_rank_order(self, harness):
        session = harness.session()
        densities = [t.benefit_density for t in session.rep_txns]
        assert densities == sorted(densities, reverse=True)

    def test_empty_session_completes_immediately(self, harness):
        from repro.core.session import RepartitionSession

        session = RepartitionSession(
            harness.stack.env, harness.stack.tm, harness.stack.metrics, []
        )
        assert session.completed.triggered


class TestSubmission:
    def test_submit_moves_to_queued(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.submit(rep, Priority.LOW)
        assert session.state_of(rep.txn_id) is RepState.QUEUED
        assert rep.txn_id in harness.stack.tm.queue

    def test_double_submit_rejected(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.submit(rep, Priority.LOW)
        with pytest.raises(ValueError):
            session.submit(rep, Priority.LOW)

    def test_promote_requeues_at_new_priority(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.submit(rep, Priority.LOW)
        assert session.promote(rep, Priority.NORMAL)
        assert rep.priority is Priority.NORMAL
        assert session.state_of(rep.txn_id) is RepState.QUEUED

    def test_promote_pending_fails(self, harness):
        session = harness.session()
        assert not session.promote(session.rep_txns[0], Priority.NORMAL)


class TestPiggybackClaims:
    def test_claim_pending_transaction(self, harness):
        session = harness.session()
        type_id = session.rep_txns[0].type_id
        claimed = session.claim_for_piggyback(type_id)
        assert claimed is session.rep_txns[0]
        assert session.state_of(claimed.txn_id) is RepState.PIGGYBACKED

    def test_claim_unknown_type_returns_none(self, harness):
        session = harness.session()
        assert session.claim_for_piggyback(999) is None

    def test_claim_queued_transaction_removes_from_queue(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.submit(rep, Priority.LOW)
        claimed = session.claim_for_piggyback(rep.type_id)
        assert claimed is rep
        assert rep.txn_id not in harness.stack.tm.queue

    def test_claim_dispatched_transaction_returns_none(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.submit(rep, Priority.NORMAL)
        harness.stack.env.run(until=0.001)  # dispatcher picks it up
        assert session.claim_for_piggyback(rep.type_id) is None

    def test_release_returns_to_pending(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.claim_for_piggyback(rep.type_id)
        released = session.release_piggyback(rep.txn_id)
        assert released is rep
        assert session.state_of(rep.txn_id) is RepState.PENDING

    def test_release_non_piggybacked_returns_none(self, harness):
        session = harness.session()
        assert session.release_piggyback(session.rep_txns[0].txn_id) is None

    def test_claimed_type_can_be_reclaimed_after_release(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.claim_for_piggyback(rep.type_id)
        session.release_piggyback(rep.txn_id)
        assert session.claim_for_piggyback(rep.type_id) is rep


class TestCompletion:
    def test_complete_removes_from_trep(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.complete(rep.txn_id)
        assert session.state_of(rep.txn_id) is RepState.DONE
        assert rep.type_id not in session.trep

    def test_complete_is_idempotent(self, harness):
        session = harness.session()
        rep = session.rep_txns[0]
        session.complete(rep.txn_id)
        session.complete(rep.txn_id)
        assert session.unfinished_count() == len(session.rep_txns) - 1

    def test_completion_event_fires_when_all_done(self, harness):
        session = harness.session()
        for rep in session.rep_txns:
            assert not session.completed.triggered
            session.complete(rep.txn_id)
        assert session.completed.triggered
        assert session.is_complete

    def test_pending_lists_in_rank_order(self, harness):
        session = harness.session()
        session.complete(session.rep_txns[1].txn_id)
        pending = session.pending()
        assert session.rep_txns[1] not in pending
        assert pending == [
            t
            for t in session.rep_txns
            if session.state_of(t.txn_id) is RepState.PENDING
        ]

    def test_mean_rep_txn_cost(self, harness):
        session = harness.session()
        costs = [t.cost for t in session.rep_txns]
        assert session.mean_rep_txn_cost() == pytest.approx(
            sum(costs) / len(costs)
        )
