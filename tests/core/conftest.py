"""Fixtures for core-layer tests: a wired system with a pending plan."""

from dataclasses import dataclass

import pytest

from repro.core import Repartitioner, generate_and_rank
from repro.core.session import RepartitionSession
from repro.partitioning import PartitionPlan, diff_plan
from repro.workload import TransactionType, WorkloadProfile

from ..txn.conftest import Stack, build_stack


@dataclass
class CoreHarness:
    stack: Stack
    profile: WorkloadProfile
    plan: PartitionPlan
    specs: list
    repartitioner: Repartitioner

    def session(self) -> RepartitionSession:
        return RepartitionSession(
            self.stack.env, self.stack.tm, self.stack.metrics, self.specs
        )


def build_harness(n_types=4, frequencies=None, **stack_kwargs):
    """Types of 2 keys each, split over partitions 0/1, plan collocates."""
    stack = build_stack(keys=2 * n_types + 2, **stack_kwargs)
    if frequencies is None:
        frequencies = [float(n_types - i) for i in range(n_types)]
    types = [
        TransactionType(i, (2 * i, 2 * i + 1), frequencies[i])
        for i in range(n_types)
    ]
    profile = WorkloadProfile(table="t", types=types)
    # Rebuild placement: each type split across partitions 1 and 2, so
    # collocating it on partition 0 takes two migrations (two ops per
    # repartition transaction).
    for ttype in types:
        k0, k1 = ttype.keys
        if stack.pmap.primary_of(k0) != 1:
            move_record(stack, k0, 1)
        if stack.pmap.primary_of(k1) != 2:
            move_record(stack, k1, 2)
    plan = PartitionPlan()
    for ttype in types:
        plan.assign(ttype.keys[0], 0)
        plan.assign(ttype.keys[1], 0)
    ops = diff_plan(stack.pmap, plan)
    specs = generate_and_rank(ops, plan, stack.pmap, profile, stack.cost_model)
    repartitioner = Repartitioner(
        stack.env, stack.tm, stack.router, stack.metrics, stack.cost_model
    )
    return CoreHarness(stack, profile, plan, specs, repartitioner)


def move_record(stack, key, destination):
    """Teleport a record (test setup only, not a transaction)."""
    source = stack.pmap.primary_of(key)
    if source == destination:
        return
    record = stack.cluster.node_for_partition(source).store.delete(key)
    stack.cluster.node_for_partition(destination).store.insert(record)
    stack.pmap.move(key, source, destination)


@pytest.fixture
def harness():
    return build_harness()
