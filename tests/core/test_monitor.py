"""Tests for workload-history monitoring and the automatic trigger loop."""

import pytest

from repro.core import (
    AutoRepartitioner,
    AutoRepartitionerConfig,
    ApplyAllScheduler,
    Repartitioner,
    WorkloadMonitor,
)
from repro.partitioning import RepartitionOptimizer
from repro.routing import Query
from repro.types import AccessMode

from ..txn.conftest import build_stack


@pytest.fixture
def stack():
    return build_stack()


def make_txn(stack, type_id, keys):
    return stack.tm.create_normal(
        [Query("t", k, AccessMode.READ) for k in keys], type_id=type_id
    )


class TestWorkloadMonitor:
    def test_observe_counts_arrivals(self, stack):
        monitor = WorkloadMonitor(stack.env, interval_s=10.0)
        for _ in range(3):
            monitor.observe(make_txn(stack, 1, (0, 1)))
        monitor.observe(make_txn(stack, 2, (2, 3)))
        stack.env.run(until=10)  # roll the interval
        profile = monitor.observed_profile()
        assert profile.type(1).frequency == 3.0
        assert profile.type(2).frequency == 1.0
        assert monitor.total_observed == 4

    def test_keys_recorded_sorted(self, stack):
        monitor = WorkloadMonitor(stack.env, interval_s=10.0)
        monitor.observe(make_txn(stack, 1, (5, 2, 9)))
        stack.env.run(until=10)
        assert monitor.observed_profile().type(1).keys == (2, 5, 9)

    def test_window_evicts_old_intervals(self, stack):
        monitor = WorkloadMonitor(
            stack.env, interval_s=10.0, window_intervals=2
        )
        monitor.observe(make_txn(stack, 1, (0,)))
        stack.env.run(until=10)
        stack.env.run(until=30)  # two more (empty) intervals roll past
        assert monitor.observed_profile().types == []

    def test_observed_rate(self, stack):
        monitor = WorkloadMonitor(stack.env, interval_s=10.0)
        for _ in range(20):
            monitor.observe(make_txn(stack, 1, (0,)))
        stack.env.run(until=10)
        assert monitor.observed_rate_txn_per_s() == pytest.approx(2.0)

    def test_min_arrivals_filters_noise(self, stack):
        monitor = WorkloadMonitor(stack.env, interval_s=10.0)
        monitor.observe(make_txn(stack, 1, (0,)))
        for _ in range(5):
            monitor.observe(make_txn(stack, 2, (1,)))
        stack.env.run(until=10)
        profile = monitor.observed_profile(min_arrivals=2)
        assert [t.type_id for t in profile.types] == [2]

    def test_resubmissions_counted_once(self, stack):
        monitor = WorkloadMonitor(stack.env, interval_s=10.0)
        txn = make_txn(stack, 1, (0, 1))
        monitor.observe(txn)
        monitor.observe(txn)  # retry of the same transaction
        stack.env.run(until=10)
        assert monitor.observed_profile().type(1).frequency == 1.0
        assert monitor.total_observed == 1

    def test_untyped_transactions_ignored(self, stack):
        monitor = WorkloadMonitor(stack.env, interval_s=10.0)
        monitor.observe(make_txn(stack, None, (0,)))
        stack.env.run(until=10)
        assert monitor.total_observed == 0

    def test_window_validation(self, stack):
        with pytest.raises(ValueError):
            WorkloadMonitor(stack.env, window_intervals=0)


class TestAutoRepartitioner:
    def build(self, stack, threshold=0.5):
        monitor = WorkloadMonitor(stack.env, interval_s=20.0, table="t")
        repartitioner = Repartitioner(
            stack.env, stack.tm, stack.router, stack.metrics,
            stack.cost_model,
        )
        optimizer = RepartitionOptimizer(
            stack.cost_model, stack.cluster.partition_ids
        )
        auto = AutoRepartitioner(
            repartitioner,
            monitor,
            optimizer,
            stack.metrics,
            capacity_units_per_s=stack.cluster.total_capacity_units_per_s,
            scheduler_factory=ApplyAllScheduler,
            config=AutoRepartitionerConfig(
                utilisation_threshold=threshold, min_arrivals=1
            ),
        )
        return monitor, repartitioner, auto

    def test_no_trigger_below_threshold(self):
        stack = build_stack(capacity=1000.0)
        monitor, _repartitioner, auto = self.build(stack, threshold=0.5)
        monitor.observe(make_txn(stack, 1, (0, 1)))  # distributed type
        stack.env.run(until=45)
        assert auto.sessions_started == 0

    def test_trigger_deploys_observed_plan(self):
        stack = build_stack(capacity=1.0)  # tiny capacity -> overload
        monitor, repartitioner, auto = self.build(stack, threshold=0.5)
        # A hot distributed type observed 30 times in the window.
        for _ in range(30):
            monitor.observe(make_txn(stack, 1, (0, 1)))  # partitions 0,1
        stack.env.run(until=45)
        assert auto.sessions_started == 1
        stack.env.run(until=400)
        assert repartitioner.session is not None
        assert repartitioner.session.is_complete
        # The observed type's keys are now collocated.
        homes = {stack.pmap.primary_of(0), stack.pmap.primary_of(1)}
        assert len(homes) == 1

    def test_cooldown_prevents_thrashing(self):
        stack = build_stack(capacity=0.5)
        monitor, _repartitioner, auto = self.build(stack, threshold=0.1)
        for _ in range(50):
            monitor.observe(make_txn(stack, 1, (0, 1)))
        stack.env.run(until=45)
        first = auto.sessions_started
        # Keep the same pressure; no new distributed types exist, so no
        # further session may start even after the cooldown.
        for _ in range(50):
            monitor.observe(make_txn(stack, 1, (0, 1)))
        stack.env.run(until=300)
        assert auto.sessions_started == first == 1
