"""Tests for the Repartitioner coordinator."""

import pytest

from repro.core import ApplyAllScheduler, HybridScheduler


class TestRankPlan:
    def test_rank_plan_diffs_live_map(self, harness):
        specs = harness.repartitioner.rank_plan(
            harness.plan, harness.profile
        )
        assert len(specs) == len(harness.profile.types)
        densities = [s.benefit_density for s in specs]
        assert densities == sorted(densities, reverse=True)

    def test_identity_plan_yields_nothing(self, harness):
        from repro.partitioning import plan_from_map

        specs = harness.repartitioner.rank_plan(
            plan_from_map(harness.stack.pmap), harness.profile
        )
        assert specs == []


class TestDeploy:
    def test_deploy_wires_scheduler_hooks(self, harness):
        scheduler = ApplyAllScheduler()
        session = harness.repartitioner.deploy(harness.specs, scheduler)
        assert harness.stack.tm.scheduler is scheduler
        assert scheduler.on_interval in (
            harness.stack.metrics.interval_observers
        )
        assert scheduler.session is session

    def test_deploy_plan_end_to_end(self, harness):
        session = harness.repartitioner.deploy_plan(
            harness.plan, harness.profile, ApplyAllScheduler()
        )
        harness.stack.env.run(until=2000)
        assert session.is_complete
        for ttype in harness.profile.types:
            homes = {harness.stack.pmap.primary_of(k) for k in ttype.keys}
            assert len(homes) == 1

    def test_second_concurrent_session_rejected(self, harness):
        harness.repartitioner.deploy(harness.specs, ApplyAllScheduler())
        with pytest.raises(RuntimeError, match="already active"):
            harness.repartitioner.deploy(
                harness.specs, HybridScheduler()
            )

    def test_new_session_allowed_after_completion(self, harness):
        session = harness.repartitioner.deploy(
            harness.specs, ApplyAllScheduler()
        )
        harness.stack.env.run(until=2000)
        assert session.is_complete
        second = harness.repartitioner.deploy([], ApplyAllScheduler())
        assert second.is_complete
