"""Tests for the five scheduling strategies."""

import pytest

from repro.core import (
    AfterAllScheduler,
    ApplyAllScheduler,
    FeedbackConfig,
    FeedbackScheduler,
    HybridScheduler,
    PiggybackConfig,
    PiggybackScheduler,
)
from repro.core.session import RepState
from repro.errors import ConfigError
from repro.metrics.collectors import IntervalRecord
from repro.types import Priority

from .conftest import build_harness


def bind(scheduler, harness):
    session = harness.session()
    scheduler.bind(session)
    harness.stack.tm.scheduler = scheduler
    return session


def record(index=0, normal_cost=100.0, rep_high=0.0, piggy=0.0):
    rec = IntervalRecord(index=index, start=0.0, end=20.0)
    rec.normal_cost = normal_cost
    rec.rep_cost_high = rep_high
    rec.rep_cost_piggyback = piggy
    return rec


class TestApplyAll:
    def test_submits_everything_at_high_priority(self, harness):
        scheduler = ApplyAllScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        for rep in session.rep_txns:
            assert session.state_of(rep.txn_id) is RepState.QUEUED
            assert rep.priority is Priority.HIGH

    def test_deploys_fully(self, harness):
        scheduler = ApplyAllScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        harness.stack.env.run(until=1000)
        assert session.is_complete
        for ttype in harness.profile.types:
            partitions = {
                harness.stack.pmap.primary_of(k) for k in ttype.keys
            }
            assert len(partitions) == 1


class TestAfterAll:
    def test_submits_everything_at_low_priority(self, harness):
        scheduler = AfterAllScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        for rep in session.rep_txns:
            assert rep.priority is Priority.LOW

    def test_completes_when_idle(self, harness):
        scheduler = AfterAllScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        harness.stack.env.run(until=1000)
        assert session.is_complete


class TestFeedback:
    def test_begin_uses_low_priority_baseline(self, harness):
        scheduler = FeedbackScheduler(FeedbackConfig())
        session = bind(scheduler, harness)
        scheduler.begin()
        for rep in session.rep_txns:
            assert rep.priority is Priority.LOW

    def test_promotions_follow_budget(self, harness):
        config = FeedbackConfig(setpoint=1.5, max_promotions_per_interval=2)
        scheduler = FeedbackScheduler(config)
        session = bind(scheduler, harness)
        scheduler.begin()
        # PV starts at 1.0 (no rep cost): error = 0.5 -> ratio 0.5+0.5.
        scheduler.on_interval(record(normal_cost=10.0))
        promoted = [
            rep for rep in session.rep_txns
            if rep.priority is Priority.NORMAL
        ]
        assert len(promoted) == 2  # capped
        # Highest-density transactions promoted first.
        assert promoted[0] is session.rep_txns[0]

    def test_promotion_respects_cap(self, harness):
        config = FeedbackConfig(
            setpoint=2.0, max_promotions_per_interval=1
        )
        scheduler = FeedbackScheduler(config)
        session = bind(scheduler, harness)
        scheduler.begin()
        scheduler.on_interval(record(normal_cost=1000.0))
        promoted = [
            rep for rep in session.rep_txns
            if rep.priority is Priority.NORMAL
        ]
        assert len(promoted) == 1

    def test_pv_at_setpoint_stops_promotion_growth(self, harness):
        config = FeedbackConfig(setpoint=1.05)
        scheduler = FeedbackScheduler(config)
        bind(scheduler, harness)
        scheduler.begin()
        ratio_before = scheduler.ratio
        # Measured PV exactly at the setpoint: no adjustment.
        scheduler.on_interval(
            record(normal_cost=100.0, rep_high=5.0)
        )
        assert scheduler.ratio == pytest.approx(ratio_before)

    def test_overshoot_reduces_ratio(self, harness):
        scheduler = FeedbackScheduler(FeedbackConfig(setpoint=1.05))
        bind(scheduler, harness)
        scheduler.begin()
        before = scheduler.ratio
        scheduler.on_interval(record(normal_cost=100.0, rep_high=50.0))
        assert scheduler.ratio < before

    def test_ratio_never_negative(self, harness):
        scheduler = FeedbackScheduler(FeedbackConfig(setpoint=1.01))
        bind(scheduler, harness)
        scheduler.begin()
        for _ in range(5):
            scheduler.on_interval(
                record(normal_cost=10.0, rep_high=100.0)
            )
        assert scheduler.ratio == 0.0

    def test_saturated_interval_uses_hint(self, harness):
        config = FeedbackConfig(setpoint=2.0, normal_cost_hint=50.0,
                                max_promotions_per_interval=10)
        scheduler = FeedbackScheduler(config)
        session = bind(scheduler, harness)
        scheduler.begin()
        scheduler.on_interval(record(normal_cost=0.0))
        promoted = [
            rep for rep in session.rep_txns
            if rep.priority is Priority.NORMAL
        ]
        assert promoted  # the hint kept the controller alive

    def test_setpoint_scale_validated(self):
        with pytest.raises(ConfigError):
            FeedbackConfig(setpoint=0.5)

    def test_no_promotion_after_completion(self, harness):
        scheduler = FeedbackScheduler(FeedbackConfig(setpoint=2.0))
        session = bind(scheduler, harness)
        scheduler.begin()
        harness.stack.env.run(until=2000)
        assert session.is_complete
        scheduler.on_interval(record())  # must be a no-op, not crash


class TestPiggyback:
    def test_begin_queues_nothing(self, harness):
        scheduler = PiggybackScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        assert len(harness.stack.tm.queue) == 0
        assert all(
            session.state_of(t.txn_id) is RepState.PENDING
            for t in session.rep_txns
        )

    def test_benefiting_carrier_gets_ops(self, harness):
        scheduler = PiggybackScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        ttype = harness.profile.types[0]
        carrier = harness.stack.tm.create_normal(
            [harness.stack.write(k) for k in ttype.keys],
            type_id=ttype.type_id,
        )
        harness.stack.tm.submit(carrier)
        assert carrier.is_piggybacked
        assert scheduler.piggybacks == 1
        rep_id = carrier.carrying_rep_txn
        harness.stack.env.run(until=1000)
        assert carrier.committed
        assert session.state_of(rep_id) is RepState.DONE

    def test_unrelated_carrier_untouched(self, harness):
        scheduler = PiggybackScheduler()
        bind(scheduler, harness)
        scheduler.begin()
        carrier = harness.stack.tm.create_normal(
            [harness.stack.read(0)], type_id=None
        )
        harness.stack.tm.submit(carrier)
        assert not carrier.is_piggybacked

    def test_oversized_rep_txn_not_attached(self, harness):
        scheduler = PiggybackScheduler(
            PiggybackConfig(max_ops_per_carrier=1)
        )
        bind(scheduler, harness)
        scheduler.begin()
        ttype = harness.profile.types[0]
        carrier = harness.stack.tm.create_normal(
            [harness.stack.read(k) for k in ttype.keys],
            type_id=ttype.type_id,
        )
        harness.stack.tm.submit(carrier)
        # Each repartition transaction carries 2 ops > cap of 1.
        assert not carrier.is_piggybacked

    def test_failed_carrier_is_stripped_and_not_reburdened(self):
        harness = build_harness(rep_op_failure_probability=1.0,
                                max_attempts=3)
        scheduler = PiggybackScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        ttype = harness.profile.types[0]
        carrier = harness.stack.tm.create_normal(
            [harness.stack.write(k) for k in ttype.keys],
            type_id=ttype.type_id,
        )
        rep_txn = session.trep[ttype.type_id]
        harness.stack.tm.submit(carrier)
        assert carrier.is_piggybacked
        harness.stack.env.run(until=1000)
        # Carrier failed once with ops, was stripped, resubmitted clean,
        # and committed; the repartition transaction is pending again.
        assert carrier.committed
        assert not carrier.is_piggybacked
        assert scheduler.carrier_failures == 1
        assert session.state_of(rep_txn.txn_id) is RepState.PENDING


class TestHybrid:
    def test_begin_submits_low_baseline(self, harness):
        scheduler = HybridScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        for rep in session.rep_txns:
            assert session.state_of(rep.txn_id) is RepState.QUEUED
            assert rep.priority is Priority.LOW

    def test_carrier_claims_from_queue(self, harness):
        scheduler = HybridScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        ttype = harness.profile.types[0]
        carrier = harness.stack.tm.create_normal(
            [harness.stack.write(k) for k in ttype.keys],
            type_id=ttype.type_id,
        )
        rep_txn = session.trep[ttype.type_id]
        harness.stack.tm.submit(carrier)
        assert carrier.is_piggybacked
        assert rep_txn.txn_id not in harness.stack.tm.queue

    def test_pv_counts_piggybacked_cost(self):
        scheduler = HybridScheduler(
            FeedbackConfig(setpoint=1.05)
        )
        assert scheduler.feedback.config.count_piggybacked_in_pv

    def test_failed_carrier_requeues_rep_txn_at_low(self):
        harness = build_harness(rep_op_failure_probability=1.0,
                                max_attempts=2)
        scheduler = HybridScheduler()
        session = bind(scheduler, harness)
        scheduler.begin()
        ttype = harness.profile.types[0]
        carrier = harness.stack.tm.create_normal(
            [harness.stack.write(k) for k in ttype.keys],
            type_id=ttype.type_id,
        )
        rep_txn = session.trep[ttype.type_id]
        harness.stack.tm.submit(carrier)
        harness.stack.env.run(until=5)
        # After the carrier failure the rep txn must be back in the queue
        # so the feedback module can promote it later.
        assert session.state_of(rep_txn.txn_id) is RepState.QUEUED

    def test_full_deployment(self, harness):
        scheduler = HybridScheduler(
            FeedbackConfig(setpoint=1.5, normal_cost_hint=10.0)
        )
        session = bind(scheduler, harness)
        scheduler.begin()
        harness.stack.metrics.interval_observers.append(
            scheduler.on_interval
        )
        harness.stack.env.run(until=2000)
        assert session.is_complete
