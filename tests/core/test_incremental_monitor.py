"""Incremental window aggregates and the delta-log-driven cost cache.

The monitor's merged per-type statistics and the ``TypeCostCache`` are
pure optimisations: both must produce exactly what a from-scratch
computation produces — the merged stats what a full oldest-to-newest
window rescan yields, and ``mean_cost`` the bit-identical result of
``CostModel.expected_cost_per_txn`` — across interval rolls, window
evictions, epoch publishes, and delta-log trims.
"""

import random

import pytest

from repro.core import WorkloadMonitor
from repro.core.monitor import TypeCostCache
from repro.partitioning import CostModel
from repro.routing import PartitionMap, PartitionMapStore
from repro.workload.profile import TransactionType

from ..txn.conftest import build_stack
from .test_monitor import make_txn


def _rescan(monitor):
    """Reference: full oldest-to-newest merge over the raw window."""
    merged = {}
    arrivals = 0
    for interval in monitor._window:
        for type_id, stats in interval.items():
            entry = merged.get(type_id)
            if entry is None:
                merged[type_id] = [stats.keys, stats.arrivals]
            else:
                entry[1] += stats.arrivals
            arrivals += stats.arrivals
    return merged, arrivals


def test_merged_stats_match_full_rescan_over_random_history():
    """Drive 30 intervals of random observations through a 4-interval
    window; the incremental aggregates must equal a full rescan after
    every roll (including rolls that evict and re-adopt key sets)."""
    stack = build_stack()
    monitor = WorkloadMonitor(stack.env, interval_s=10.0, window_intervals=4)
    rng = random.Random(7)
    now = 0
    for _ in range(30):
        for _ in range(rng.randrange(6)):
            type_id = rng.randrange(5)
            keys = tuple(rng.sample(range(8), rng.randrange(1, 4)))
            monitor.observe(make_txn(stack, type_id, keys))
        now += 10
        stack.env.run(until=now)
        expected_merged, expected_arrivals = _rescan(monitor)
        assert monitor._window_arrivals == expected_arrivals
        assert {
            tid: [s.keys, s.arrivals] for tid, s in monitor._merged.items()
        } == expected_merged
        profile = monitor.observed_profile()
        assert [t.type_id for t in profile.types] == sorted(expected_merged)
        for ttype in profile.types:
            assert ttype.keys == expected_merged[ttype.type_id][0]
            assert ttype.frequency == float(
                expected_merged[ttype.type_id][1]
            )
        assert monitor.observed_rate_txn_per_s() == pytest.approx(
            expected_arrivals / (len(monitor._window) * 10.0)
        )


def test_eviction_readopts_keys_from_oldest_surviving_interval():
    """When the interval that defined a type's key set leaves the
    window, the merged keys must switch to the now-oldest interval's —
    exactly what a rescan would report."""
    stack = build_stack()
    monitor = WorkloadMonitor(stack.env, interval_s=10.0, window_intervals=2)
    monitor.observe(make_txn(stack, 1, (0, 1)))
    stack.env.run(until=10)
    monitor.observe(make_txn(stack, 1, (5, 6)))
    stack.env.run(until=20)
    assert monitor.observed_profile().type(1).keys == (0, 1)
    stack.env.run(until=30)  # evicts the (0, 1) interval
    assert monitor.observed_profile().type(1).keys == (5, 6)
    assert monitor.observed_profile().type(1).frequency == 1.0


def _store(keys=16, partitions=4, **kwargs):
    pmap = PartitionMap()
    for key in range(keys):
        pmap.assign(key, key % partitions)
    return PartitionMapStore(pmap, **kwargs)


def _types(rng, count=12, key_space=16):
    return [
        TransactionType(
            type_id=i,
            keys=tuple(sorted(rng.sample(range(key_space), 3))),
            frequency=float(rng.randrange(1, 9)),
        )
        for i in range(count)
    ]


class TestTypeCostCache:
    def test_bit_identical_across_publishes(self):
        """mean_cost == expected_cost_per_txn (exact float equality)
        before and after every publish in a random move sequence."""
        rng = random.Random(11)
        store = _store()
        model = CostModel()
        cache = TypeCostCache(model, store)
        types = _types(rng)
        for _ in range(20):
            assert cache.mean_cost(types) == model.expected_cost_per_txn(
                types, store.current_epoch
            )
            stage = store.begin_stage()
            key = rng.randrange(16)
            src = store.primary_of(key)
            stage.move(key, src, (src + 1) % 4)
            store.publish(stage)
        assert cache.hits > 0

    def test_invalidates_only_touched_types(self):
        store = _store()
        cache = TypeCostCache(CostModel(), store)
        types = [
            TransactionType(type_id=1, keys=(0, 1), frequency=1.0),
            TransactionType(type_id=2, keys=(8, 9), frequency=1.0),
        ]
        cache.mean_cost(types)
        assert cache.misses == 2
        stage = store.begin_stage()
        stage.move(0, store.primary_of(0), 3)
        store.publish(stage)
        cache.mean_cost(types)
        # Type 1's key moved (re-costed); type 2 untouched (cache hit).
        assert cache.misses == 3
        assert cache.hits == 1

    def test_changed_key_set_forces_recost(self):
        store = _store()
        cache = TypeCostCache(CostModel(), store)
        cache.mean_cost([TransactionType(1, (0, 1), 1.0)])
        value = cache.mean_cost([TransactionType(1, (0, 5), 1.0)])
        assert cache.misses == 2
        assert value == CostModel().expected_cost_per_txn(
            [TransactionType(1, (0, 5), 1.0)], store.current_epoch
        )

    def test_log_trim_drops_whole_cache_but_stays_exact(self):
        """Publishing past the retained log forces a full drop; results
        must still match the uncached model exactly."""
        rng = random.Random(3)
        store = _store(max_delta_log=2)
        model = CostModel()
        cache = TypeCostCache(model, store)
        types = _types(rng)
        cache.mean_cost(types)
        for round_index in range(4):  # 4 publishes > max_delta_log=2
            stage = store.begin_stage()
            key = round_index
            src = store.primary_of(key)
            stage.move(key, src, (src + 1) % 4)
            store.publish(stage)
        assert len(store.delta_log()) == 2
        misses_before = cache.misses
        assert cache.mean_cost(types) == model.expected_cost_per_txn(
            types, store.current_epoch
        )
        # The watermark predates the retained log: everything re-costed.
        assert cache.misses == misses_before + len(types)

    def test_empty_types_is_zero(self):
        store = _store()
        assert TypeCostCache(CostModel(), store).mean_cost([]) == 0.0
