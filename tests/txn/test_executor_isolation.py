"""Executor tests: isolation levels, replica writes, cost accounting."""

import pytest

from repro.locking import LockMode
from repro.partitioning import CreateReplica
from repro.txn import ExecutorConfig

from .conftest import build_stack


class TestReadCommitted:
    def test_read_locks_released_before_commit(self):
        """Under read committed, a long-running writer doesn't block a
        reader's whole transaction — readers latch and move on."""
        stack = build_stack(capacity=1.0)
        # Reader touches keys 0 (read) then does work; writer wants X
        # on key 0 concurrently.
        reader = stack.tm.create_normal([stack.read(0), stack.read(3)])
        writer = stack.tm.create_normal([stack.write(0, 9)])
        stack.tm.submit(reader)
        stack.tm.submit(writer)
        stack.env.run(until=100)
        assert reader.committed and writer.committed

    def test_write_locks_still_held_to_commit(self, stack):
        txn = stack.tm.create_normal([stack.write(0)])
        stack.tm.submit(txn)
        # Immediately after dispatch, mid-execution, the X lock is held.
        stack.env.run(until=0.05)
        node = stack.cluster.node_for_partition(0)
        if not txn.committed:
            assert node.locks.holds(txn.txn_id, 0) is LockMode.EXCLUSIVE
        stack.env.run(until=100)
        assert txn.committed
        assert node.locks.holds(txn.txn_id, 0) is None


class TestSerializable:
    def build(self):
        stack = build_stack()
        # Swap in a serializable executor config.
        stack.executor.config = ExecutorConfig(
            lock_timeout_s=5.0, isolation="serializable"
        )
        return stack

    def test_read_locks_held_to_commit(self):
        stack = self.build()
        txn = stack.tm.create_normal([stack.read(0)])
        holds_during = []
        original = stack.executor._apply_commit_effects

        def spy(txn_inner, ops, stage, journal):
            node = stack.cluster.node_for_partition(0)
            holds_during.append(node.locks.holds(txn_inner.txn_id, 0))
            original(txn_inner, ops, stage, journal)

        stack.executor._apply_commit_effects = spy
        stack.run_txn(txn)
        assert txn.committed
        assert holds_during == [LockMode.SHARED]

    def test_invalid_isolation_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(isolation="repeatable_read")


class TestReplicaWrites:
    def test_write_updates_every_replica(self, stack):
        stack.run_txn(
            stack.tm.create_repartition(
                [CreateReplica(op_id=0, key=0, source=0, destination=1)]
            )
        )
        txn = stack.tm.create_normal([stack.write(0, 4242)])
        stack.run_txn(txn)
        assert txn.committed
        for pid in stack.pmap.replicas_of(0):
            node = stack.cluster.node_for_partition(pid)
            assert node.store.read(0) == 4242

    def test_aborted_write_undone_on_every_replica(self):
        stack = build_stack(rep_op_failure_probability=1.0, max_attempts=1)
        # Manually create a replica (bypassing injected failures).
        record = stack.cluster.node_for_partition(0).store.get(0)
        stack.cluster.node_for_partition(1).store.insert(record.copy())
        stack.pmap.add_replica(0, 1)
        original = {
            pid: stack.cluster.node_for_partition(pid).store.read(0)
            for pid in stack.pmap.replicas_of(0)
        }
        from repro.partitioning import Migrate

        txn = stack.tm.create_normal([stack.write(0, 777)])
        txn.attach_rep_ops(
            9, [Migrate(op_id=0, key=5, source=2, destination=0)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=10)
        assert not txn.committed
        for pid, value in original.items():
            node = stack.cluster.node_for_partition(pid)
            assert node.store.read(0) == value


class TestAccounting:
    def test_network_bytes_counted_for_migration(self, stack):
        from repro.partitioning import Migrate

        before = stack.cluster.network.bytes_sent
        txn = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.run_txn(txn)
        record_size = 8  # default tuple size
        assert stack.cluster.network.bytes_sent >= before + record_size

    def test_local_transaction_skips_2pc(self, stack):
        before = stack.executor.twopc.rounds
        txn = stack.tm.create_normal([stack.read(0), stack.read(3)])
        stack.run_txn(txn)
        # Single-participant rounds are counted but cost nothing; the
        # round must not have sent messages.
        assert stack.cluster.network.messages_sent == 0
        assert txn.committed

    def test_distributed_transaction_runs_2pc(self, stack):
        txn = stack.tm.create_normal([stack.write(0), stack.write(1)])
        stack.run_txn(txn)
        assert txn.committed
        assert stack.cluster.network.messages_sent >= 4  # 2 RTTs x 2 nodes

    def test_per_txn_overhead_charged(self):
        stack = build_stack()
        stack.executor.config = ExecutorConfig(per_txn_overhead_units=3.0)
        txn = stack.tm.create_normal([stack.read(0)])
        stack.run_txn(txn)
        assert txn.normal_cost_units == pytest.approx(3.0 + 1.0)
