"""Tests for the transaction executor (2PL + work + 2PC + undo)."""

import pytest

from repro.partitioning import CreateReplica, DeleteReplica, Migrate
from repro.types import TxnStatus

from .conftest import build_stack


class TestNormalExecution:
    def test_local_transaction_commits(self, stack):
        # keys 0 and 3 both live on partition 0 (key % 3).
        txn = stack.tm.create_normal([stack.read(0), stack.read(3)])
        stack.run_txn(txn)
        assert txn.committed
        assert txn.normal_cost_units == pytest.approx(1.0)  # C

    def test_distributed_transaction_costs_double(self, stack):
        txn = stack.tm.create_normal([stack.read(0), stack.read(1)])
        stack.run_txn(txn)
        assert txn.committed
        assert txn.normal_cost_units == pytest.approx(2.0)  # 2C

    def test_write_applies_value(self, stack):
        txn = stack.tm.create_normal([stack.write(0, value=777)])
        stack.run_txn(txn)
        node = stack.cluster.node_for_partition(0)
        assert node.store.read(0) == 777

    def test_locks_released_after_commit(self, stack):
        txn = stack.tm.create_normal([stack.write(0), stack.read(1)])
        stack.run_txn(txn)
        for node in stack.cluster.nodes:
            assert node.locks.locked_keys(txn.txn_id) == frozenset()

    def test_latency_recorded(self, stack):
        txn = stack.tm.create_normal([stack.read(0)])
        stack.run_txn(txn)
        assert txn.latency is not None and txn.latency > 0


class TestLockContention:
    def test_conflicting_writes_serialise(self, stack):
        first = stack.tm.create_normal([stack.write(0, value=1)])
        second = stack.tm.create_normal([stack.write(0, value=2)])
        stack.tm.submit(first)
        stack.tm.submit(second)
        stack.env.run(until=100)
        assert first.committed and second.committed
        assert stack.cluster.node_for_partition(0).store.read(0) == 2

    def test_lock_timeout_aborts(self):
        stack = build_stack(lock_timeout_s=1.0, capacity=0.1)
        # First txn occupies the CPU for 10s while holding the lock.
        blocker = stack.tm.create_normal([stack.write(0)])
        waiter = stack.tm.create_normal([stack.write(0)])
        stack.tm.submit(blocker)
        stack.tm.submit(waiter)
        stack.env.run(until=200)
        assert blocker.committed
        assert waiter.status is TxnStatus.ABORTED
        assert "lock wait" in waiter.abort_reason

    def test_deadlock_victim_aborts_and_survivor_commits(self):
        stack = build_stack(capacity=0.5, lock_timeout_s=500.0)
        # Two transactions acquiring the same keys in opposite order;
        # slow capacity makes their lock phases overlap.
        txn_a = stack.tm.create_normal([stack.write(0), stack.write(3)])
        txn_b = stack.tm.create_normal([stack.write(3), stack.write(0)])
        stack.tm.submit(txn_a)
        stack.tm.submit(txn_b)
        stack.env.run(until=2000)
        outcomes = {txn_a.status, txn_b.status}
        assert TxnStatus.COMMITTED in outcomes
        assert TxnStatus.ABORTED in outcomes
        aborted = txn_a if txn_a.status is TxnStatus.ABORTED else txn_b
        assert "deadlock" in aborted.abort_reason

    def test_aborted_write_is_undone(self):
        stack = build_stack(capacity=0.5, lock_timeout_s=500.0,
                            max_attempts=1)
        original_0 = stack.cluster.node_for_partition(0).store.read(0)
        original_3 = stack.cluster.node_for_partition(0).store.read(3)
        txn_a = stack.tm.create_normal(
            [stack.write(0, 111), stack.write(3, 111)]
        )
        txn_b = stack.tm.create_normal(
            [stack.write(3, 222), stack.write(0, 222)]
        )
        stack.tm.submit(txn_a)
        stack.tm.submit(txn_b)
        stack.env.run(until=2000)
        committed = txn_a if txn_a.committed else txn_b
        value = committed.queries[0].value
        store = stack.cluster.node_for_partition(0).store
        # The committed value must be present; the aborted one nowhere.
        assert store.read(0) == value
        assert store.read(3) == value
        assert {store.read(0), store.read(3)} != {original_0, original_3}


class TestRepartitionExecution:
    def test_migration_moves_record_and_map(self, stack):
        op = Migrate(op_id=0, key=0, source=0, destination=1)
        txn = stack.tm.create_repartition([op])
        stack.run_txn(txn)
        assert txn.committed
        assert stack.pmap.primary_of(0) == 1
        assert 0 not in stack.cluster.node_for_partition(0).store
        assert 0 in stack.cluster.node_for_partition(1).store

    def test_migration_preserves_value(self, stack):
        node0 = stack.cluster.node_for_partition(0)
        node0.store.get(0).write(4242)
        txn = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=2)]
        )
        stack.run_txn(txn)
        assert stack.cluster.node_for_partition(2).store.read(0) == 4242

    def test_create_replica(self, stack):
        op = CreateReplica(op_id=0, key=0, source=0, destination=1)
        txn = stack.tm.create_repartition([op])
        stack.run_txn(txn)
        assert set(stack.pmap.replicas_of(0)) == {0, 1}
        assert 0 in stack.cluster.node_for_partition(1).store

    def test_delete_replica(self, stack):
        stack.run_txn(
            stack.tm.create_repartition(
                [CreateReplica(op_id=0, key=0, source=0, destination=1)]
            )
        )
        stack.run_txn(
            stack.tm.create_repartition(
                [DeleteReplica(op_id=1, key=0, partition=1)]
            )
        )
        assert stack.pmap.replicas_of(0) == (0,)
        assert 0 not in stack.cluster.node_for_partition(1).store

    def test_already_applied_op_skipped(self, stack):
        stack.run_txn(
            stack.tm.create_repartition(
                [Migrate(op_id=0, key=0, source=0, destination=1)]
            )
        )
        applied = []
        stack.executor.on_rep_op_applied = (
            lambda op, txn: applied.append(op.op_id)
        )
        # Second transaction with the same logical move: a no-op.
        txn = stack.tm.create_repartition(
            [Migrate(op_id=1, key=0, source=0, destination=1)]
        )
        stack.run_txn(txn)
        assert txn.committed
        assert applied == [1]
        assert stack.pmap.primary_of(0) == 1

    def test_rep_cost_charged(self, stack):
        txn = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.run_txn(txn)
        assert txn.rep_cost_units == pytest.approx(
            stack.cost_model.rep_op_cost
        )

    def test_injected_failure_aborts_and_undoes(self):
        stack = build_stack(rep_op_failure_probability=1.0)
        txn = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=1)  # before the retry loop resubmits
        assert txn.status is TxnStatus.ABORTED
        assert "injected failure" in txn.abort_reason
        assert stack.pmap.primary_of(0) == 0
        assert 0 not in stack.cluster.node_for_partition(1).store


class TestPiggybackedExecution:
    def test_carrier_applies_ops_on_commit(self, stack):
        txn = stack.tm.create_normal([stack.write(0), stack.read(1)])
        txn.attach_rep_ops(
            999, [Migrate(op_id=0, key=1, source=1, destination=0)]
        )
        stack.run_txn(txn)
        assert txn.committed
        assert stack.pmap.primary_of(1) == 0
        assert txn.rep_cost_units > 0
        assert txn.normal_cost_units > 0

    def test_carrier_failure_leaves_data_unmoved(self):
        stack = build_stack(rep_op_failure_probability=1.0, max_attempts=1)
        txn = stack.tm.create_normal([stack.write(0)])
        txn.attach_rep_ops(
            999, [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=10)
        assert txn.status is TxnStatus.ABORTED
        assert stack.pmap.primary_of(0) == 0
        # The normal write must have been rolled back too.
        assert stack.cluster.node_for_partition(0).store.read(0) == 0


class TestStaleRoutingRecovery:
    def test_transaction_follows_migrated_tuple(self, stack):
        """A normal txn queued before a migration still finds the tuple."""
        migration = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        reader = stack.tm.create_normal([stack.write(0, value=5)])
        stack.tm.submit(migration)
        stack.tm.submit(reader)
        stack.env.run(until=100)
        assert migration.committed
        assert reader.committed
        assert stack.cluster.node_for_partition(1).store.read(0) == 5


class TestNodeDownExecution:
    def test_txn_touching_down_node_aborts_with_cause(self):
        stack = build_stack(max_attempts=1)
        node = stack.cluster.node(1)
        node.enable_fault_injection()
        node.crash()
        txn = stack.tm.create_normal([stack.write(1)])  # key 1 -> node 1
        stack.tm.submit(txn)
        stack.env.run(until=50)
        assert txn.status is TxnStatus.ABORTED
        assert txn.abort_cause == "node_down"

    def test_retry_commits_after_restart(self):
        stack = build_stack(max_attempts=3)
        node = stack.cluster.node(1)
        node.enable_fault_injection()
        node.crash()
        txn = stack.tm.create_normal([stack.write(1, value=9)])
        stack.tm.submit(txn)

        def fixer():
            yield stack.env.timeout(0.05)
            node.restart()

        stack.env.process(fixer())
        stack.env.run(until=50)
        assert txn.committed
        assert txn.attempts >= 2
        assert stack.tm.total_retries >= 1
        assert node.store.read(1) == 9

    def test_distributed_txn_spanning_down_node_aborts(self):
        """One dead participant aborts the whole distributed txn; the
        surviving node's state is untouched."""
        stack = build_stack(max_attempts=1)
        live = stack.cluster.node(0)
        before = live.store.read(0)
        stack.cluster.node(1).enable_fault_injection()
        stack.cluster.node(1).crash()
        txn = stack.tm.create_normal(
            [stack.write(0, value=123), stack.write(1, value=456)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=50)
        assert txn.status is TxnStatus.ABORTED
        assert txn.abort_cause == "node_down"
        assert live.store.read(0) == before  # undo ran on the survivor
