"""Tests for the transaction manager: dispatch, retry, deadlines, idling."""

import pytest

from repro.partitioning import Migrate
from repro.txn.manager import QUEUE_TIMEOUT_REASON
from repro.types import Priority, TxnStatus

from .conftest import build_stack


class TestIds:
    def test_ids_are_unique_and_increasing(self, stack):
        ids = [stack.tm.next_id() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_factories_stamp_creation_time(self, stack):
        txn = stack.tm.create_normal([stack.read(0)])
        assert txn.created_at == stack.env.now


class TestDispatch:
    def test_higher_priority_runs_first(self):
        stack = build_stack(max_concurrent=1, capacity=10)
        low = stack.tm.create_normal([stack.read(0)])
        high = stack.tm.create_normal([stack.read(1)])
        stack.tm.submit(low, Priority.NORMAL)
        stack.tm.submit(high, Priority.HIGH)
        stack.env.run(until=100)
        assert high.committed and low.committed
        assert high.started_at <= low.started_at

    def test_concurrency_limit_respected(self):
        stack = build_stack(max_concurrent=2, capacity=1.0)
        txns = [stack.tm.create_normal([stack.read(k)]) for k in range(6)]
        for txn in txns:
            stack.tm.submit(txn)
        stack.env.run(until=0.01)
        assert stack.tm.in_flight <= 2
        stack.env.run(until=100)
        assert all(t.committed for t in txns)

    def test_counters(self, stack):
        txn = stack.tm.create_normal([stack.read(0)])
        stack.run_txn(txn)
        assert stack.tm.total_submitted == 1
        assert stack.tm.total_committed == 1
        assert stack.tm.total_aborted == 0


class TestRetry:
    def test_aborted_normal_txn_retries_up_to_max(self):
        stack = build_stack(rep_op_failure_probability=1.0,
                            max_attempts=3)
        txn = stack.tm.create_normal([stack.write(0)])
        txn.attach_rep_ops(
            9, [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=100)
        # Ops are still attached (no scheduler strips them here), so every
        # attempt fails; attempts capped at max_attempts.
        assert txn.attempts == 3
        assert stack.tm.total_aborted == 3

    def test_repartition_txn_retries_until_success(self):
        stack = build_stack()
        # Patch failure probability dynamically: fail twice then succeed.
        calls = []
        original = stack.executor._maybe_inject_failure

        def flaky(txn, op):
            calls.append(1)
            if len(calls) <= 2:
                from repro.errors import TransactionAborted

                raise TransactionAborted(txn.txn_id, "injected flake")

        stack.executor._maybe_inject_failure = flaky
        txn = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=100)
        assert txn.committed
        assert txn.attempts == 3


class TestRetryBackoff:
    def _manager(self, stack, **overrides):
        from repro.txn.manager import (
            TransactionManager,
            TransactionManagerConfig,
        )

        rng = overrides.pop("rng", None)
        return TransactionManager(
            stack.env,
            stack.executor,
            config=TransactionManagerConfig(**overrides),
            rng=rng,
        )

    def test_delay_doubles_per_attempt_up_to_cap(self):
        stack = build_stack()
        tm = self._manager(
            stack, retry_delay_s=1.0, retry_backoff_factor=2.0,
            max_retry_delay_s=5.0,
        )
        txn = tm.create_normal([stack.read(0)])
        delays = []
        for attempts in (1, 2, 3, 4, 5):
            txn.attempts = attempts
            delays.append(tm._retry_delay(txn))
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_first_retry_unchanged_by_backoff_defaults(self):
        """Backoff only kicks in from the second retry, so fault-free
        runs keep their original retry timing."""
        stack = build_stack()
        tm = self._manager(stack, retry_delay_s=0.1)
        txn = tm.create_normal([stack.read(0)])
        txn.attempts = 1
        assert tm._retry_delay(txn) == pytest.approx(0.1)

    def test_jitter_requires_rng(self):
        stack = build_stack()
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            self._manager(stack, retry_jitter=0.5)

    def test_jitter_spreads_but_stays_bounded(self):
        import random

        stack = build_stack()
        tm = self._manager(
            stack, retry_delay_s=1.0, retry_jitter=0.5,
            rng=random.Random(42),
        )
        txn = tm.create_normal([stack.read(0)])
        txn.attempts = 1
        delays = {tm._retry_delay(txn) for _ in range(50)}
        assert len(delays) > 1  # actually spread
        assert all(1.0 <= d <= 1.5 for d in delays)

    def test_invalid_backoff_config_rejected(self):
        from repro.errors import ConfigError
        from repro.txn.manager import TransactionManagerConfig

        with pytest.raises(ConfigError):
            TransactionManagerConfig(retry_backoff_factor=0.5)
        with pytest.raises(ConfigError):
            TransactionManagerConfig(
                retry_delay_s=2.0, max_retry_delay_s=1.0
            )
        with pytest.raises(ConfigError):
            TransactionManagerConfig(retry_jitter=-0.1)


class TestQueueDeadline:
    def test_expired_transaction_aborted_without_execution(self):
        stack = build_stack(queue_timeout_s=5.0, capacity=0.1,
                            max_concurrent=1)
        # The first txn occupies the only slot for 5s+ of service time.
        blocker = stack.tm.create_normal([stack.read(0)])
        victim = stack.tm.create_normal([stack.read(1)])
        stack.tm.submit(blocker)
        stack.tm.submit(victim)
        stack.env.run(until=100)
        assert blocker.committed
        assert victim.status is TxnStatus.ABORTED
        assert victim.abort_reason == QUEUE_TIMEOUT_REASON
        assert victim.abort_cause == "queue_timeout"
        assert victim.started_at is None  # never executed

    def test_expired_transaction_not_retried(self):
        stack = build_stack(queue_timeout_s=5.0, capacity=0.1,
                            max_concurrent=1, max_attempts=5)
        blocker = stack.tm.create_normal([stack.read(0)])
        victim = stack.tm.create_normal([stack.read(1)])
        stack.tm.submit(blocker)
        stack.tm.submit(victim)
        stack.env.run(until=200)
        assert victim.attempts == 1

    def test_repartition_transactions_have_no_deadline(self):
        stack = build_stack(queue_timeout_s=1.0, capacity=0.2,
                            max_concurrent=1)
        blocker = stack.tm.create_normal([stack.read(0)])
        rep = stack.tm.create_repartition(
            [Migrate(op_id=0, key=1, source=1, destination=0)]
        )
        stack.tm.submit(blocker)
        stack.tm.submit(rep, Priority.NORMAL)
        stack.env.run(until=200)
        assert rep.committed


class TestLowPriorityIdling:
    def test_low_priority_waits_for_idleness(self):
        """LOW work must not dispatch while the system is busy."""
        stack = build_stack(capacity=1.0, max_concurrent=10)
        # Saturate: ten 1-unit txns, each ~1s of service on node 0.
        normals = [
            stack.tm.create_normal([stack.read(0)]) for _ in range(10)
        ]
        rep = stack.tm.create_repartition(
            [Migrate(op_id=0, key=1, source=1, destination=0)]
        )
        stack.tm.submit(rep, Priority.LOW)
        for txn in normals:
            stack.tm.submit(txn)
        stack.env.run(until=300)
        assert rep.committed
        # The repartition transaction must have started only after the
        # normal work drained (in_flight fell to the idle threshold).
        last_normal_start = max(t.started_at for t in normals)
        assert rep.started_at >= last_normal_start
