"""Shared fixtures: a small assembled cluster + transaction stack."""

import random
from dataclasses import dataclass

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.metrics import MetricsCollector
from repro.partitioning import CostModel
from repro.routing import PartitionMap, Query, QueryRouter
from repro.sim import Environment
from repro.storage import Record
from repro.txn import (
    ExecutorConfig,
    TransactionExecutor,
    TransactionManager,
    TransactionManagerConfig,
    TwoPhaseCommitCoordinator,
)
from repro.types import AccessMode


@dataclass
class Stack:
    """A fully wired miniature system for transaction-level tests."""

    env: Environment
    cluster: Cluster
    pmap: PartitionMap
    router: QueryRouter
    cost_model: CostModel
    executor: TransactionExecutor
    tm: TransactionManager
    metrics: MetricsCollector

    def read(self, key):
        return Query("t", key, AccessMode.READ)

    def write(self, key, value=1):
        return Query("t", key, AccessMode.WRITE, value=value)

    def run_txn(self, txn, priority=None):
        """Submit and run to completion; returns the transaction."""
        self.tm.submit(txn, priority)
        self.env.run(until=self.env.now + 1000)
        return txn


def build_stack(
    node_count=3,
    keys=30,
    capacity=100.0,
    lock_timeout_s=5.0,
    rep_op_failure_probability=0.0,
    queue_timeout_s=None,
    max_concurrent=50,
    max_attempts=1,
    vote_no_probability=0.0,
):
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(node_count=node_count, capacity_units_per_s=capacity),
    )
    pmap = PartitionMap()
    for key in range(keys):
        pid = key % node_count
        pmap.assign(key, pid)
        cluster.node_for_partition(pid).store.insert(
            Record(key=key, value=key * 10)
        )
    router = QueryRouter(pmap)
    cost_model = CostModel(base_cost=1.0, rep_op_cost=0.5)
    rng = random.Random(0)
    twopc = TwoPhaseCommitCoordinator(
        env,
        cluster.network,
        rng=rng if vote_no_probability > 0 else None,
    )
    if vote_no_probability > 0:
        from repro.txn import TwoPhaseCommitConfig

        twopc = TwoPhaseCommitCoordinator(
            env,
            cluster.network,
            TwoPhaseCommitConfig(vote_no_probability=vote_no_probability),
            rng=rng,
        )
    executor = TransactionExecutor(
        env,
        cluster,
        router,
        cost_model,
        twopc,
        ExecutorConfig(
            lock_timeout_s=lock_timeout_s,
            rep_op_failure_probability=rep_op_failure_probability,
        ),
        rng=rng,
    )
    metrics = MetricsCollector(env, interval_s=20.0)
    tm = TransactionManager(
        env,
        executor,
        metrics,
        TransactionManagerConfig(
            max_concurrent=max_concurrent,
            max_attempts=max_attempts,
            queue_timeout_s=queue_timeout_s,
        ),
    )
    return Stack(env, cluster, pmap, router, cost_model, executor, tm, metrics)


@pytest.fixture
def stack():
    return build_stack()
