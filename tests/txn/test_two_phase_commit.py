"""Tests for the two-phase-commit coordinator."""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.txn import TwoPhaseCommitConfig, TwoPhaseCommitCoordinator


@pytest.fixture
def cluster(env):
    return Cluster(env, ClusterConfig(node_count=3, capacity_units_per_s=10))


def run_commit(env, coordinator, participants):
    results = []

    def proc():
        outcome = yield env.process(coordinator.commit(-1, participants))
        results.append((env.now, outcome))

    env.process(proc())
    env.run()
    return results[0]


class TestProtocol:
    def test_single_participant_skips_protocol(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        when, outcome = run_commit(env, coordinator, cluster.nodes[:1])
        assert outcome.committed
        assert when == 0.0  # one-phase commit: no messages
        assert cluster.network.messages_sent == 0

    def test_unanimous_yes_commits(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        assert outcome.no_votes == ()

    def test_two_phases_cost_two_round_trips(self, env):
        cluster = Cluster(
            env,
            ClusterConfig(
                node_count=2,
                capacity_units_per_s=10,
                network_latency_s=0.1,
                network_bandwidth_bytes_per_s=1e12,
            ),
        )
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        # prepare RTT (0.2) + decision RTT (0.2), parallel across nodes.
        assert when == pytest.approx(0.4)

    def test_rounds_counted(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        run_commit(env, coordinator, cluster.nodes)
        assert coordinator.rounds == 1


class TestFailureInjection:
    def test_injected_no_vote_aborts(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(
            env,
            cluster.network,
            TwoPhaseCommitConfig(vote_no_probability=1.0),
            rng=random.Random(0),
        )
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert not outcome.committed
        assert len(outcome.no_votes) == 3
        assert coordinator.aborts == 1

    def test_injection_requires_rng(self, env, cluster):
        with pytest.raises(ValueError):
            TwoPhaseCommitCoordinator(
                env,
                cluster.network,
                TwoPhaseCommitConfig(vote_no_probability=0.5),
            )

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseCommitConfig(vote_no_probability=1.5)

    def test_down_participant_counts_as_no_vote(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        cluster.node(1).crash()
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert not outcome.committed
        assert outcome.no_votes == (1,)
        assert outcome.down == (1,)
        assert coordinator.down_participant_rounds == 1
        assert coordinator.aborts == 1

    def test_one_phase_commit_refused_to_down_node(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        cluster.node(0).crash()
        _when, outcome = run_commit(env, coordinator, cluster.nodes[:1])
        assert not outcome.committed
        assert outcome.down == (0,)

    def test_crash_mid_prepare_votes_no(self, env):
        """A participant crashing while serving PREPARE work must vote
        NO instead of blowing up the round."""
        cluster = Cluster(
            env, ClusterConfig(node_count=2, capacity_units_per_s=10)
        )
        coordinator = TwoPhaseCommitCoordinator(
            env,
            cluster.network,
            TwoPhaseCommitConfig(prepare_work_units=50.0),  # 5 s of work
        )
        cluster.node(1).enable_fault_injection()

        def saboteur():
            yield env.timeout(1.0)
            cluster.node(1).crash()

        env.process(saboteur())
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert not outcome.committed
        assert 1 in outcome.no_votes
        assert outcome.down == (1,)

    def test_phase_timeout_counts_silent_votes_as_no(self, env):
        """An unanswered PREPARE past the deadline is a NO vote."""
        cluster = Cluster(
            env, ClusterConfig(node_count=2, capacity_units_per_s=1.0)
        )
        coordinator = TwoPhaseCommitCoordinator(
            env,
            cluster.network,
            TwoPhaseCommitConfig(
                prepare_work_units=100.0,  # 100 s of prepare work...
                phase_timeout_s=2.0,       # ...against a 2 s deadline
            ),
        )
        when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert not outcome.committed
        assert outcome.timed_out
        assert set(outcome.no_votes) == {0, 1}
        assert outcome.down == ()
        assert coordinator.timeout_rounds == 1
        assert when < 100.0  # the coordinator did not wait out the work

    def test_no_timeout_round_when_votes_arrive_in_time(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(
            env,
            cluster.network,
            TwoPhaseCommitConfig(phase_timeout_s=60.0),
        )
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        assert not outcome.timed_out
        assert coordinator.timeout_rounds == 0

    def test_invalid_phase_timeout_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseCommitConfig(phase_timeout_s=0.0)

    def test_prepare_work_charged_at_participant(self, env):
        cluster = Cluster(
            env,
            ClusterConfig(
                node_count=2,
                capacity_units_per_s=10,
                network_latency_s=0.0001,
            ),
        )
        network = cluster.network
        coordinator = TwoPhaseCommitCoordinator(
            env, network, TwoPhaseCommitConfig(prepare_work_units=5.0)
        )
        when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        assert when >= 0.5  # 5 units at 10 units/s on each node (parallel)
