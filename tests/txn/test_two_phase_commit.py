"""Tests for the two-phase-commit coordinator."""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Network
from repro.txn import TwoPhaseCommitConfig, TwoPhaseCommitCoordinator


@pytest.fixture
def cluster(env):
    return Cluster(env, ClusterConfig(node_count=3, capacity_units_per_s=10))


def run_commit(env, coordinator, participants):
    results = []

    def proc():
        outcome = yield env.process(coordinator.commit(-1, participants))
        results.append((env.now, outcome))

    env.process(proc())
    env.run()
    return results[0]


class TestProtocol:
    def test_single_participant_skips_protocol(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        when, outcome = run_commit(env, coordinator, cluster.nodes[:1])
        assert outcome.committed
        assert when == 0.0  # one-phase commit: no messages
        assert cluster.network.messages_sent == 0

    def test_unanimous_yes_commits(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        assert outcome.no_votes == ()

    def test_two_phases_cost_two_round_trips(self, env):
        cluster = Cluster(
            env,
            ClusterConfig(
                node_count=2,
                capacity_units_per_s=10,
                network_latency_s=0.1,
                network_bandwidth_bytes_per_s=1e12,
            ),
        )
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        # prepare RTT (0.2) + decision RTT (0.2), parallel across nodes.
        assert when == pytest.approx(0.4)

    def test_rounds_counted(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(env, cluster.network)
        run_commit(env, coordinator, cluster.nodes)
        assert coordinator.rounds == 1


class TestFailureInjection:
    def test_injected_no_vote_aborts(self, env, cluster):
        coordinator = TwoPhaseCommitCoordinator(
            env,
            cluster.network,
            TwoPhaseCommitConfig(vote_no_probability=1.0),
            rng=random.Random(0),
        )
        _when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert not outcome.committed
        assert len(outcome.no_votes) == 3
        assert coordinator.aborts == 1

    def test_injection_requires_rng(self, env, cluster):
        with pytest.raises(ValueError):
            TwoPhaseCommitCoordinator(
                env,
                cluster.network,
                TwoPhaseCommitConfig(vote_no_probability=0.5),
            )

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseCommitConfig(vote_no_probability=1.5)

    def test_prepare_work_charged_at_participant(self, env):
        cluster = Cluster(
            env,
            ClusterConfig(
                node_count=2,
                capacity_units_per_s=10,
                network_latency_s=0.0001,
            ),
        )
        network = cluster.network
        coordinator = TwoPhaseCommitCoordinator(
            env, network, TwoPhaseCommitConfig(prepare_work_units=5.0)
        )
        when, outcome = run_commit(env, coordinator, cluster.nodes)
        assert outcome.committed
        assert when >= 0.5  # 5 units at 10 units/s on each node (parallel)
