"""Tests for transaction objects and the priority processing queue."""

import pytest

from repro.partitioning import Migrate
from repro.routing import Query
from repro.txn import ProcessingQueue, Transaction
from repro.types import AccessMode, Priority, TxnKind


def normal_txn(txn_id, priority=Priority.NORMAL):
    return Transaction(
        txn_id=txn_id,
        kind=TxnKind.NORMAL,
        queries=[Query("t", txn_id, AccessMode.READ)],
        priority=priority,
    )


def rep_txn(txn_id):
    return Transaction(
        txn_id=txn_id,
        kind=TxnKind.REPARTITION,
        rep_ops=[Migrate(op_id=0, key=1, source=0, destination=1)],
    )


class TestTransactionValidation:
    def test_repartition_with_queries_rejected(self):
        with pytest.raises(ValueError):
            Transaction(
                txn_id=1,
                kind=TxnKind.REPARTITION,
                queries=[Query("t", 1, AccessMode.READ)],
                rep_ops=[Migrate(op_id=0, key=1, source=0, destination=1)],
            )

    def test_repartition_without_ops_rejected(self):
        with pytest.raises(ValueError):
            Transaction(txn_id=1, kind=TxnKind.REPARTITION)

    def test_kind_predicates(self):
        assert normal_txn(1).is_normal
        assert rep_txn(2).is_repartition
        assert not rep_txn(2).is_normal


class TestPiggybackAttachment:
    def test_attach_marks_carrier(self):
        txn = normal_txn(1)
        ops = [Migrate(op_id=0, key=5, source=0, destination=1)]
        txn.attach_rep_ops(99, ops)
        assert txn.is_piggybacked
        assert txn.carrying_rep_txn == 99
        assert txn.rep_ops == ops

    def test_double_attach_rejected(self):
        txn = normal_txn(1)
        ops = [Migrate(op_id=0, key=5, source=0, destination=1)]
        txn.attach_rep_ops(99, ops)
        with pytest.raises(ValueError, match="already carries"):
            txn.attach_rep_ops(100, ops)

    def test_attach_to_repartition_rejected(self):
        with pytest.raises(ValueError):
            rep_txn(1).attach_rep_ops(2, [])

    def test_strip_returns_ops_and_clears(self):
        txn = normal_txn(1)
        ops = [Migrate(op_id=0, key=5, source=0, destination=1)]
        txn.attach_rep_ops(99, ops)
        stripped = txn.strip_rep_ops()
        assert stripped == ops
        assert not txn.is_piggybacked
        assert txn.carrying_rep_txn is None


class TestLatency:
    def test_latency_requires_both_stamps(self):
        txn = normal_txn(1)
        assert txn.latency is None
        txn.first_submitted_at = 10.0
        txn.finished_at = 14.5
        assert txn.latency == pytest.approx(4.5)


class TestProcessingQueue:
    def test_priority_order(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1, Priority.LOW))
        queue.put(normal_txn(2, Priority.HIGH))
        queue.put(normal_txn(3, Priority.NORMAL))
        assert queue.pop().txn_id == 2
        assert queue.pop().txn_id == 3
        assert queue.pop().txn_id == 1

    def test_fifo_within_priority(self, env):
        queue = ProcessingQueue(env)
        for txn_id in (5, 6, 7):
            queue.put(normal_txn(txn_id))
        assert [queue.pop().txn_id for _ in range(3)] == [5, 6, 7]

    def test_pop_empty_returns_none(self, env):
        assert ProcessingQueue(env).pop() is None

    def test_duplicate_enqueue_rejected(self, env):
        queue = ProcessingQueue(env)
        txn = normal_txn(1)
        queue.put(txn)
        with pytest.raises(ValueError):
            queue.put(txn)

    def test_remove_makes_entry_invisible(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1))
        queue.put(normal_txn(2))
        removed = queue.remove(1)
        assert removed.txn_id == 1
        assert len(queue) == 1
        assert queue.pop().txn_id == 2

    def test_remove_missing_returns_none(self, env):
        assert ProcessingQueue(env).remove(9) is None

    def test_reprioritise_moves_level(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1, Priority.LOW))
        queue.put(normal_txn(2, Priority.NORMAL))
        assert queue.reprioritise(1, Priority.HIGH)
        assert queue.pop().txn_id == 1

    def test_reprioritise_missing_returns_false(self, env):
        assert not ProcessingQueue(env).reprioritise(1, Priority.HIGH)

    def test_demotion_not_served_through_stale_entry(self, env):
        """Regression: a demoted txn must not pop at its old priority.

        Matching stale heap entries on txn id alone let a NORMAL→LOW
        demotion pop through the abandoned NORMAL-level entry, making
        the demotion a silent no-op.
        """
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1, Priority.NORMAL))
        assert queue.reprioritise(1, Priority.LOW)
        queue.put(normal_txn(2, Priority.NORMAL))
        assert queue.peek().txn_id == 2
        assert [queue.pop().txn_id for _ in range(2)] == [2, 1]

    def test_demote_then_promote_back(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1, Priority.NORMAL))
        queue.put(normal_txn(2, Priority.NORMAL))
        assert queue.reprioritise(1, Priority.LOW)
        assert queue.reprioritise(1, Priority.HIGH)
        assert [queue.pop().txn_id for _ in range(2)] == [1, 2]

    def test_peek_skips_stale_entries(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1, Priority.HIGH))
        queue.put(normal_txn(2))
        queue.remove(1)
        assert queue.peek().txn_id == 2

    def test_wait_nonempty_fires_on_put(self, env):
        queue = ProcessingQueue(env)
        fired = []

        def waiter():
            yield queue.wait_nonempty()
            fired.append(env.now)

        env.process(waiter())

        def producer():
            yield env.timeout(3)
            queue.put(normal_txn(1))

        env.process(producer())
        env.run()
        assert fired == [3.0]

    def test_wait_nonempty_immediate_when_loaded(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1))
        assert queue.wait_nonempty().triggered

    def test_counts_by_priority(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1, Priority.LOW))
        queue.put(normal_txn(2, Priority.LOW))
        queue.put(normal_txn(3, Priority.HIGH))
        counts = queue.counts_by_priority()
        assert counts[Priority.LOW] == 2
        assert counts[Priority.HIGH] == 1
        assert counts[Priority.NORMAL] == 0

    def test_waiting_normal_work_excludes_repartition(self, env):
        queue = ProcessingQueue(env)
        queue.put(normal_txn(1))
        queue.put(rep_txn(2))
        assert queue.waiting_normal_work() == 1
