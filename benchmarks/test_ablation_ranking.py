"""Ablation — benefit-density ranking (paper §3.1).

Algorithm 1 schedules repartition transactions in descending benefit
density so the system harvests the biggest wins first.  This benchmark
deploys the same plan with the ranked order, the *reversed* order, and
a seeded shuffle, using the Feedback scheduler under a Zipf high load —
the setting where ordering matters most (a few hot types carry most of
the traffic).

Expectation: ranked order recovers throughput fastest and accumulates
the most committed work, because early promotions fix the hottest
transaction types.
"""

import random

from repro.experiments import bench_scale, run_experiment
from repro.metrics import area_under, mean, series

from .conftest import emit, run_once


def reverse_order(specs):
    return list(reversed(specs))


def shuffled(specs):
    rng = random.Random(1234)
    out = list(specs)
    rng.shuffle(out)
    return out


def _config():
    return bench_scale(
        scheduler="Feedback",
        distribution="zipf",
        load="high",
        alpha=1.0,
        measure_intervals=30,
        warmup_intervals=5,
    )


def _run_all():
    config = _config()
    return {
        "benefit-density (paper)": run_experiment(config),
        "reversed": run_experiment(config, spec_transform=reverse_order),
        "shuffled": run_experiment(config, spec_transform=shuffled),
    }


def test_ranking_order_matters(benchmark):
    results = run_once(benchmark, _run_all)

    lines = ["Ablation: repartition transaction ordering (Feedback, Zipf/high)",
             f"{'order':<26} {'thru(mean)':>11} {'lat(ms)':>9} "
             f"{'fail':>7} {'rep_rate':>9}"]
    throughput_area = {}
    for label, result in results.items():
        thru = series(result.measured, "throughput_txn_per_min")
        throughput_area[label] = area_under(thru)
        lines.append(
            f"{label:<26} {mean(thru):>11.0f} "
            f"{mean(series(result.measured, 'mean_latency_ms')):>9.0f} "
            f"{mean(series(result.measured, 'failure_rate')):>7.3f} "
            f"{result.measured[-1].rep_rate:>9.3f}"
        )
    emit("ablation_ranking", "\n".join(lines))

    # Ranked order must harvest at least as much throughput as both
    # perturbed orders (it fixes the hottest types first).
    ranked = throughput_area["benefit-density (paper)"]
    assert ranked >= throughput_area["reversed"]
    assert ranked >= 0.95 * throughput_area["shuffled"]
