"""Ablation — repartition-transaction granularity (paper §3.1).

The paper argues for a middle ground between two extremes:

* **one giant transaction** holds every lock until commit, maximising
  lock contention with normal transactions;
* **one transaction per operation** multiplies per-transaction overhead
  (begin/commit work, a 2PC round per transaction).

This benchmark deploys the same plan three ways on the same workload —
Algorithm 1's per-benefiting-type grouping, one-giant, and per-op — and
compares deployment time, normal-transaction failures, and latency.
A small per-transaction overhead is enabled so the per-op extreme pays
its bookkeeping cost, as it would on the real system.
"""

from dataclasses import replace

from repro.core.ranking import RepartitionTransactionSpec
from repro.experiments import bench_scale, run_experiment
from repro.metrics import mean, series

from .conftest import emit, run_once

REP_OP_COST = 2.0


def one_giant(specs):
    """All operations in a single repartition transaction."""
    ops = [op for spec in specs for op in spec.ops]
    if not ops:
        return []
    return [
        RepartitionTransactionSpec(
            ops=ops,
            type_id=-1,
            benefit=sum(spec.benefit for spec in specs),
            cost=REP_OP_COST * len(ops),
        )
    ]


def per_op(specs):
    """One repartition transaction per operation."""
    out = []
    for spec in specs:
        for op in spec.ops:
            out.append(
                RepartitionTransactionSpec(
                    ops=[op],
                    type_id=-1,
                    benefit=op.benefit,
                    cost=REP_OP_COST,
                )
            )
    return out


def _config():
    config = bench_scale(
        scheduler="ApplyAll",
        distribution="zipf",
        load="low",
        alpha=0.6,
        measure_intervals=30,
        warmup_intervals=5,
    )
    return replace(
        config,
        runtime=replace(
            config.runtime, per_txn_overhead_units=0.5
        ),
    )


def _run_all():
    config = _config()
    results = {}
    for label, transform in (
        ("per-type (Algorithm 1)", None),
        ("one-giant", one_giant),
        ("per-op", per_op),
    ):
        results[label] = run_experiment(config, spec_transform=transform)
    return results


def test_granularity_tradeoff(benchmark):
    results = run_once(benchmark, _run_all)

    lines = ["Ablation: repartition transaction granularity",
             f"{'grouping':<24} {'done@':>6} {'final':>6} "
             f"{'fail':>7} {'lat(ms)':>9}"]
    stats = {}
    for label, result in results.items():
        done = result.completion_interval
        final = result.measured[-1].rep_rate
        fail = mean(series(result.measured, "failure_rate"))
        latency = mean(series(result.measured, "mean_latency_ms"))
        stats[label] = (done, final, fail, latency)
        done_text = str(done) if done is not None else "-"
        lines.append(
            f"{label:<24} {done_text:>6} {final:>6.2f} "
            f"{fail:>7.3f} {latency:>9.0f}"
        )
    emit("ablation_granularity", "\n".join(lines))

    per_type = results["per-type (Algorithm 1)"]
    giant = results["one-giant"]
    per_operation = results["per-op"]

    # Algorithm 1's grouping deploys everything.
    assert per_type.measured[-1].rep_rate == 1.0
    assert per_operation.measured[-1].rep_rate >= 0.95

    # The per-op extreme pays the most transaction overhead: its
    # deployment takes at least as long as Algorithm 1's grouping.
    if per_operation.completion_interval is not None:
        assert (
            per_type.completion_interval
            <= per_operation.completion_interval
        )

    # The one-giant extreme monopolises locks: either it finishes later
    # than the per-type grouping, or — under concurrent traffic — it
    # cannot commit at all (it keeps aborting on lock waits), and either
    # way it inflicts the worst failure rate on normal transactions.
    giant_fail = mean(series(giant.measured, "failure_rate"))
    per_type_fail = mean(series(per_type.measured, "failure_rate"))
    assert giant_fail > per_type_fail
    if giant.completion_interval is not None:
        assert giant.completion_interval >= per_type.completion_interval
