"""Schema and regression guard for the committed ``BENCH_*.json`` files.

Two subcommands, both used by the perf-smoke CI job and importable from
the benchmark harness itself:

``check-schema [PATH] [--kind engine|routing|generic]``
    Validate that the benchmark file carries every required field with
    the right type, exit 1 otherwise.  The schema *kind* is inferred
    from the filename (``BENCH_engine.json`` -> engine,
    ``BENCH_routing.json`` -> routing, any other ``BENCH_*.json`` ->
    generic) unless ``--kind`` overrides it.  Every kind requires the
    provenance trio — ``recorded_at``, ``python``, ``cpu_count`` — so a
    number can never be committed without the context needed to judge
    whether it is comparable.

``compare BASELINE FRESH [--threshold 0.2]``
    Fail (exit 1) when a fresh run's kernel throughput regresses more
    than ``threshold`` (default 20%) against the committed baseline.
    Comparing numbers from different machines is meaningless, so the
    comparison is *skipped* (exit 0, with a message) unless the two
    files agree on ``cpu_count`` and the python major.minor version.

Wall-clock sections (cells, cache) are recorded for trajectory but not
gated: they are far noisier than the pure kernel loop on shared CI
hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

#: Provenance every committed benchmark file must carry, whatever it
#: measures: when it was recorded, on which interpreter, on how many
#: cores.  Without these a committed number cannot be judged comparable.
PROVENANCE_FIELDS: dict[str, tuple[type, ...]] = {
    "recorded_at": (str,),
    "python": (str,),
    "cpu_count": (int,),
}

#: Required fields for ``BENCH_engine.json`` and their accepted types.
#: ``None`` is legal exactly where a 1-core box cannot measure a speedup
#: honestly.
REQUIRED_FIELDS: dict[str, tuple[type, ...]] = {
    **PROVENANCE_FIELDS,
    "parallel_jobs": (int,),
    "kernel_events_per_s": (int, float),
    "kernel_mixed_events_per_s": (int, float),
    "kernel_run_intervals_events_per_s": (int, float),
    "standard_cell_wall_clock_s": (int, float),
    "figure4_scale_cells": (int,),
    "serial_wall_clock_s": (int, float),
    "parallel_wall_clock_s": (int, float, type(None)),
    "parallel_speedup": (int, float, type(None)),
    "parallel_skipped_reason": (str, type(None)),
    "speedup_by_jobs": (dict, type(None)),
    "cache_cold_wall_clock_s": (int, float),
    "cache_warm_wall_clock_s": (int, float),
    "cache_warm_executed": (int,),
    "cache_warm_hits": (int,),
}

#: Required fields for ``BENCH_routing.json`` (epoch-map microbench).
ROUTING_REQUIRED_FIELDS: dict[str, tuple[type, ...]] = {
    **PROVENANCE_FIELDS,
    "map_sizes": (list,),
    "publish_batch": (int,),
    "route_read_per_s": (int, float),
    "route_write_per_s": (int, float),
    "pinned_epoch_read_per_s": (int, float),
    "epoch_publish_ms_by_map_size": (dict,),
    "partition_sizes_per_s_by_map_size": (dict,),
}

#: Required fields for ``BENCH_scale.json`` (cluster-scale tier).
SCALE_REQUIRED_FIELDS: dict[str, tuple[type, ...]] = {
    **PROVENANCE_FIELDS,
    "tuple_count": (int,),
    "node_counts": (list,),
    "rss_unit": (str,),
    "build_wall_clock_s_by_nodes": (dict,),
    "peak_rss_by_nodes": (dict,),
    "route_read_per_s": (int, float),
    "pinned_epoch_read_per_s": (int, float),
    "epoch_publish_ms": (int, float),
    "compact_bytes_per_tuple": (int, float),
    "standard_bytes_per_tuple": (int, float),
    "dense_map_bytes_per_key": (int, float),
    "standard_map_bytes_per_key": (int, float),
    "stack_bytes_ratio": (int, float),
    # End-to-end simulation section: an actual production_scale run
    # (arrivals + schedulers at 100+ nodes), not just the dataset and
    # routing layers.
    "e2e_node_count": (int,),
    "e2e_tuple_count": (int,),
    "e2e_scheduler": (str,),
    "e2e_interval_s": (int, float),
    "e2e_measure_intervals": (int,),
    "e2e_capacity_units_per_s": (int, float),
    "e2e_throughput_txn_per_min": (list,),
    "e2e_committed_total": (int,),
    "e2e_wall_clock_s": (int, float),
}

#: Field sets by schema kind; ``generic`` accepts any metrics but still
#: insists on provenance.
SCHEMAS: dict[str, dict[str, tuple[type, ...]]] = {
    "engine": REQUIRED_FIELDS,
    "routing": ROUTING_REQUIRED_FIELDS,
    "scale": SCALE_REQUIRED_FIELDS,
    "generic": PROVENANCE_FIELDS,
}


def kind_for_path(path: str | Path) -> str:
    """The schema kind implied by a benchmark file's name."""
    stem = Path(path).stem  # e.g. "BENCH_engine"
    kind = stem.removeprefix("BENCH_").lower()
    return kind if kind in SCHEMAS else "generic"


#: The kernel metrics the regression gate protects.
KERNEL_METRICS = (
    "kernel_events_per_s",
    "kernel_mixed_events_per_s",
    "kernel_run_intervals_events_per_s",
)


def validate_schema(payload: Any, kind: str = "engine") -> list[str]:
    """Problems with ``payload`` as a benchmark document (empty = valid)."""
    if kind not in SCHEMAS:
        return [f"unknown schema kind: {kind}"]
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected an object"]
    problems = []
    for name, types in SCHEMAS[kind].items():
        if name not in payload:
            problems.append(f"missing field: {name}")
        elif not isinstance(payload[name], types) or isinstance(
            payload[name], bool
        ):
            problems.append(
                f"field {name} has type {type(payload[name]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems and kind == "engine":
        # The parallel section must be null *consistently*: either the
        # speedup was measured, or a reason says why it was not.
        if (payload["parallel_speedup"] is None) != (
            payload["parallel_skipped_reason"] is not None
        ):
            problems.append(
                "parallel_speedup must be null iff "
                "parallel_skipped_reason is set"
            )
        if payload["cpu_count"] < 2 and payload["parallel_speedup"] is not None:
            problems.append(
                "parallel_speedup must be null when cpu_count < 2 "
                "(a single-core 'speedup' is timesharing noise)"
            )
    if not problems and kind == "scale":
        # The per-node-count series must cover exactly the node counts
        # the file claims to have measured.
        counts = {str(n) for n in payload["node_counts"]}
        for series in ("peak_rss_by_nodes", "build_wall_clock_s_by_nodes"):
            if set(payload[series]) != counts:
                problems.append(
                    f"{series} keys {sorted(payload[series])} do not match "
                    f"node_counts {sorted(counts)}"
                )
        # The e2e section must be internally consistent: one throughput
        # sample per measured interval, at the promised cluster size.
        series = payload["e2e_throughput_txn_per_min"]
        if len(series) != payload["e2e_measure_intervals"]:
            problems.append(
                f"e2e_throughput_txn_per_min has {len(series)} samples, "
                f"expected e2e_measure_intervals="
                f"{payload['e2e_measure_intervals']}"
            )
        if payload["e2e_node_count"] < 100:
            problems.append(
                "e2e_node_count must be >= 100 (the section exists to "
                "prove the simulation runs at cluster scale)"
            )
    return problems


def _python_minor(version: str) -> str:
    return ".".join(version.split(".")[:2])


def compare(
    baseline: dict, fresh: dict, threshold: float = 0.2
) -> tuple[int, list[str]]:
    """(exit code, messages) for a baseline-vs-fresh regression check."""
    messages = []
    if baseline.get("cpu_count") != fresh.get("cpu_count"):
        return 0, [
            "skip: cpu_count differs "
            f"(baseline {baseline.get('cpu_count')}, "
            f"fresh {fresh.get('cpu_count')}) — not comparable hardware"
        ]
    if _python_minor(baseline.get("python", "")) != _python_minor(
        fresh.get("python", "")
    ):
        return 0, [
            "skip: python version differs "
            f"(baseline {baseline.get('python')}, "
            f"fresh {fresh.get('python')})"
        ]
    code = 0
    for metric in KERNEL_METRICS:
        base = baseline.get(metric)
        new = fresh.get(metric)
        if not base or not new:
            messages.append(f"skip {metric}: absent from one side")
            continue
        ratio = new / base
        line = f"{metric}: {base:.0f} -> {new:.0f} ({ratio:.2f}x)"
        if ratio < 1.0 - threshold:
            code = 1
            line += f"  REGRESSION (>{threshold:.0%} below baseline)"
        messages.append(line)
    return code, messages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check-schema", help="validate a benchmark file")
    check.add_argument(
        "path",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    check.add_argument(
        "--kind",
        choices=sorted(SCHEMAS),
        default=None,
        help="schema to apply (default: inferred from the filename)",
    )

    cmp_parser = sub.add_parser(
        "compare", help="fail on kernel-throughput regression"
    )
    cmp_parser.add_argument("baseline")
    cmp_parser.add_argument("fresh")
    cmp_parser.add_argument("--threshold", type=float, default=0.2)

    args = parser.parse_args(argv)

    if args.command == "check-schema":
        kind = args.kind or kind_for_path(args.path)
        payload = json.loads(Path(args.path).read_text())
        problems = validate_schema(payload, kind)
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.path}: schema OK ({kind})")
        return 1 if problems else 0

    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    for payload, label in ((baseline, args.baseline), (fresh, args.fresh)):
        problems = validate_schema(payload)
        for problem in problems:
            print(f"schema ({label}): {problem}", file=sys.stderr)
        if problems:
            return 1
    code, messages = compare(baseline, fresh, args.threshold)
    for message in messages:
        print(message)
    return code


if __name__ == "__main__":
    sys.exit(main())
