"""Ablation — setpoint sensitivity (paper §4.2).

"In comparing the results in the previous experiments, a higher SP here
is actually beneficial when the number of repartitioning transactions
is relatively small and Feedback has the chance to finish them in a
good time."

This sweep runs Feedback on Uniform/high at α = 60% (a small plan) with
SP from 1.02 to 1.50 and reports deployment speed vs interference.
"""

from dataclasses import replace

from repro.experiments import bench_scale, run_experiment
from repro.experiments.config import SchedulerConfig
from repro.metrics import mean, series

from .conftest import emit, run_once


def _config(setpoint):
    config = bench_scale(
        scheduler="Feedback",
        distribution="uniform",
        load="high",
        alpha=0.6,
        measure_intervals=35,
        warmup_intervals=5,
    )
    return replace(config, scheduling=SchedulerConfig(setpoint=setpoint))


def _run_sweep():
    return {
        sp: run_experiment(_config(sp))
        for sp in (1.02, 1.05, 1.25, 1.50)
    }


def test_setpoint_sweep(benchmark):
    results = run_once(benchmark, _run_sweep)

    lines = ["Ablation: SP sensitivity (Feedback, Uniform/high, alpha=60%)",
             f"{'SP':>6} {'done@':>6} {'rep_rate':>9} {'thr(mean)':>10} "
             f"{'fail':>7}"]
    final = {}
    for sp, result in results.items():
        done = result.completion_interval
        final[sp] = result.measured[-1].rep_rate
        lines.append(
            f"{sp:>6.2f} {str(done) if done is not None else '-':>6} "
            f"{final[sp]:>9.3f} "
            f"{mean(series(result.measured, 'throughput_txn_per_min')):>10.0f} "
            f"{mean(series(result.measured, 'failure_rate')):>7.3f}"
        )
    emit("ablation_sp_sweep", "\n".join(lines))

    # A larger repartition budget deploys at least as much of the plan.
    assert final[1.02] <= final[1.25] + 1e-9
    assert final[1.05] <= final[1.50] + 1e-9
    # The paper's SP=1.25 deploys (nearly) the whole small plan in time.
    assert final[1.25] >= 0.9
