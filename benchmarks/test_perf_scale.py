"""Perf harness for the cluster-scale tier: memory and wall-clock vs nodes.

Builds the ``production_scale`` preset's dataset layer (streaming type
generation → dense partition map → compact per-node stores) at each
node count and writes ``BENCH_scale.json`` at the repo root:

* **build wall-clock + peak RSS per node count** — the headline scale
  numbers: assembling a 1M-tuple cluster must stay flat-ish in time and
  memory as nodes grow from 100 to 500 (the dataset dominates both; the
  per-node overhead is bounded).  Node counts run ascending because
  ``ru_maxrss`` is a process-lifetime high-water mark.
* **routing at scale** — route reads, deep-pinned epoch reads, and
  publish latency against the 1M-key dense map, proving the O(1)
  fast paths hold at three orders of magnitude above the figure presets;
* **compact vs standard bytes/tuple** — a tracemalloc pass (separate
  from the wall-clock section: tracing slows allocation) loading the
  same sample into both store implementations;
* **end-to-end simulation at 100+ nodes** — an actual
  ``production_scale`` run through ``run_experiment`` (Poisson
  arrivals, Hybrid scheduler, locks, 2PC, repartitioning) recording the
  per-interval throughput series, not just the dataset/routing layer.
  Per-node capacity is turned down from the preset's 40 units/s so the
  single-threaded event loop finishes in bench time; offered load stays
  calibrated at the same utilisation, which is what the schedulers see,
  and the capacity used is recorded alongside the series.

Correctness is asserted alongside the timings.  Uses no pytest plugins:
``PYTHONPATH=src python -m pytest -x -q benchmarks/test_perf_scale.py``.
Environment overrides for local deep runs (CI uses the defaults):
``REPRO_SCALE_TUPLES`` (dataset size, default 1,000,000, 10M supported),
``REPRO_SCALE_NODES`` (comma-separated, default ``100,250,500``),
``REPRO_SCALE_E2E_NODES`` (simulated cluster size, default 100), and
``REPRO_SCALE_E2E_MEASURE`` (measured intervals, default 5).
"""

import dataclasses
import json
import os
import pathlib
import platform
import resource
import time
import tracemalloc

from repro.experiments import (
    production_scale,
    run_experiment,
    uses_compact_storage,
)
from repro.experiments.runner import make_partition_map, resolve_store_factory
from repro.routing import (
    DensePartitionMap,
    PartitionMap,
    PartitionMapStore,
    QueryRouter,
)
from repro.sim.random import RandomStreams
from repro.storage import CompactPartitionStore, PartitionStore, Record
from repro.workload.dataset import (
    choose_distributed_type_ids,
    initial_placement,
    place_unprofiled_keys,
)
from repro.workload.generator import iter_profile_types

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = ROOT / "BENCH_scale.json"

TUPLE_COUNT = int(os.environ.get("REPRO_SCALE_TUPLES", 1_000_000))
NODE_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_SCALE_NODES", "100,250,500").split(",")
)
ROUTE_CALLS = 200_000
PUBLISH_BATCH = 64
PINNED_DEPTH = 10
#: Tuples per store in the tracemalloc bytes-per-tuple comparison.
MEMCMP_TUPLES = 200_000

#: End-to-end simulation section (see module docstring).
E2E_NODES = int(os.environ.get("REPRO_SCALE_E2E_NODES", 100))
E2E_MEASURE_INTERVALS = int(os.environ.get("REPRO_SCALE_E2E_MEASURE", 5))
E2E_WARMUP_INTERVALS = 1
E2E_INTERVAL_S = 5.0
E2E_CAPACITY_UNITS_PER_S = 8.0
E2E_TUPLES = 500_000


def _peak_rss_kb() -> int:
    """Process high-water RSS in KB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


class _StoreRack:
    """Minimal stand-in for the cluster's store-per-partition layout.

    The bench loads the dataset without the full node machinery (locks,
    work servers, WAL) so the recorded memory is the storage layer's,
    not the simulation scaffolding's.
    """

    def __init__(self, node_count, store_factory):
        self.stores = [store_factory(pid) for pid in range(node_count)]

    def load(self, pmap, rng) -> int:
        loaded = 0
        stores = self.stores
        for key in pmap.keys():
            for pid in pmap.replicas_of(key):
                stores[pid].insert(
                    Record(key=key, value=rng.randrange(1_000_000))
                )
                loaded += 1
        return loaded


def _build_dataset(node_count: int, tuple_count: int):
    """Assemble the scale preset's dataset layer; returns (store, rack, s)."""
    config = production_scale(node_count=node_count, tuple_count=tuple_count)
    assert uses_compact_storage(config)
    store_factory = resolve_store_factory(config)
    assert store_factory is CompactPartitionStore
    streams = RandomStreams(config.seed)
    started = time.perf_counter()
    partitions = list(range(node_count))
    distributed = choose_distributed_type_ids(
        config.workload.distinct_types,
        config.alpha,
        streams.stream("placement"),
    )
    pmap = initial_placement(
        iter_profile_types(config.workload),
        partitions,
        distributed,
        pmap=make_partition_map(config),
    )
    assert isinstance(pmap, DensePartitionMap)
    place_unprofiled_keys(pmap, tuple_count, partitions)
    rack = _StoreRack(node_count, store_factory)
    loaded = rack.load(pmap, streams.stream("values"))
    elapsed = time.perf_counter() - started
    assert loaded == tuple_count
    assert len(pmap) == tuple_count
    assert sum(len(s) for s in rack.stores) == tuple_count
    map_store = PartitionMapStore(pmap)
    return map_store, rack, elapsed


def _time_route_reads(store: PartitionMapStore, n: int) -> float:
    router = QueryRouter(store)
    n_keys = len(store)
    keys = [(i * 7919) % n_keys for i in range(1000)]
    started = time.perf_counter()
    for i in range(n):
        router.route_read(keys[i % 1000])
    elapsed = time.perf_counter() - started
    assert router.reads_routed == n
    return n / elapsed


def _time_pinned_reads(store: PartitionMapStore, n: int, partitions: int):
    router = QueryRouter(store)
    pinned = store.pin()
    moved = []
    for i in range(PINNED_DEPTH):
        stage = store.begin_stage()
        key = i * 13
        primary = store.primary_of(key)
        stage.move(key, primary, (primary + 1) % partitions)
        store.publish(stage)
        moved.append((key, primary))
    n_keys = len(store)
    keys = [(i * 7919) % n_keys for i in range(1000)]
    started = time.perf_counter()
    for i in range(n):
        router.route_read(keys[i % 1000], epoch=pinned)
    elapsed = time.perf_counter() - started
    for key, old_primary in moved:
        assert pinned.primary_of(key) == old_primary
    store.unpin(pinned)
    return n / elapsed


def _time_publish(store: PartitionMapStore, partitions: int, rounds: int = 20):
    """Mean latency of staging + publishing PUBLISH_BATCH moves."""
    n_keys = len(store)
    latencies = []
    published = store.publishes
    for round_index in range(rounds):
        stage = store.begin_stage()
        base = (round_index * PUBLISH_BATCH * 31) % n_keys
        staged = 0
        offset = 0
        while staged < PUBLISH_BATCH:
            key = (base + offset * 17) % n_keys
            offset += 1
            if key in stage.staged_keys:
                continue
            primary = store.primary_of(key)
            stage.move(key, primary, (primary + 1) % partitions)
            staged += 1
        started = time.perf_counter()
        store.publish(stage)
        latencies.append(time.perf_counter() - started)
    assert store.publishes == published + rounds
    return sum(latencies) / len(latencies)


def _bytes_per_tuple(store_factory, n: int) -> float:
    """Heap bytes per resident tuple for one store implementation."""
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        store = store_factory(0)
        for key in range(n):
            store.insert(Record(key=key, value=key * 31))
        after, _ = tracemalloc.get_traced_memory()
        assert len(store) == n
        return (after - before) / n
    finally:
        tracemalloc.stop()


def _map_bytes_per_key(map_factory, n: int) -> float:
    """Heap bytes per mapped key for one partition-map implementation."""
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        pmap = map_factory()
        for key in range(n):
            pmap.assign(key, key % 8)
        after, _ = tracemalloc.get_traced_memory()
        assert len(pmap) == n
        return (after - before) / n
    finally:
        tracemalloc.stop()


def _run_e2e_simulation():
    """Full-stack simulation at 100+ nodes; returns the payload section."""
    assert E2E_NODES >= 100, "the e2e section exists to prove 100+ nodes"
    config = production_scale(
        scheduler="Hybrid",
        load="low",
        node_count=E2E_NODES,
        tuple_count=E2E_TUPLES,
        measure_intervals=E2E_MEASURE_INTERVALS,
        warmup_intervals=E2E_WARMUP_INTERVALS,
    )
    config = dataclasses.replace(
        config,
        cluster=dataclasses.replace(
            config.cluster, capacity_units_per_s=E2E_CAPACITY_UNITS_PER_S
        ),
        runtime=dataclasses.replace(
            config.runtime, interval_s=E2E_INTERVAL_S
        ),
    )
    started = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - started
    # ``measured`` drops the warmup interval(s): the recorded series is
    # exactly the paper-style x-axis.
    throughput = [
        round(r.throughput_txn_per_min, 1) for r in result.measured
    ]
    committed = sum(r.committed for r in result.measured)
    assert len(throughput) == E2E_MEASURE_INTERVALS
    # The cluster must actually serve traffic in every interval: an
    # idle "run" would record a vacuous series.
    assert all(r.committed > 0 for r in result.measured), throughput
    return {
        "e2e_node_count": E2E_NODES,
        "e2e_tuple_count": E2E_TUPLES,
        "e2e_scheduler": "Hybrid",
        "e2e_interval_s": E2E_INTERVAL_S,
        "e2e_measure_intervals": E2E_MEASURE_INTERVALS,
        "e2e_capacity_units_per_s": E2E_CAPACITY_UNITS_PER_S,
        "e2e_throughput_txn_per_min": throughput,
        "e2e_committed_total": committed,
        "e2e_wall_clock_s": round(elapsed, 1),
    }


def test_perf_scale():
    assert NODE_COUNTS == tuple(sorted(NODE_COUNTS)), (
        "node counts must ascend: ru_maxrss only ever grows, so an "
        "out-of-order run would attribute a bigger config's peak to a "
        "smaller one"
    )
    payload = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "tuple_count": TUPLE_COUNT,
        "node_counts": list(NODE_COUNTS),
        "rss_unit": "KB" if platform.system() == "Linux" else "platform",
    }

    # Dataset assembly per node count (ascending; see module docstring).
    build_s = {}
    peak_rss = {}
    scale_store = None
    for node_count in NODE_COUNTS:
        map_store, rack, elapsed = _build_dataset(node_count, TUPLE_COUNT)
        build_s[str(node_count)] = round(elapsed, 3)
        peak_rss[str(node_count)] = _peak_rss_kb()
        scale_store = map_store
        largest = max(len(s) for s in rack.stores)
        smallest = min(len(s) for s in rack.stores)
        # Round-robin cold placement keeps stores balanced.
        assert largest - smallest <= TUPLE_COUNT // node_count
        del rack
    payload["build_wall_clock_s_by_nodes"] = build_s
    payload["peak_rss_by_nodes"] = peak_rss

    # Routing fast paths against the biggest map just built.
    partitions = NODE_COUNTS[-1]
    payload["route_read_per_s"] = round(
        _time_route_reads(scale_store, ROUTE_CALLS)
    )
    payload["pinned_epoch_read_per_s"] = round(
        _time_pinned_reads(scale_store, ROUTE_CALLS // 4, partitions)
    )
    payload["epoch_publish_ms"] = round(
        _time_publish(scale_store, partitions) * 1000, 4
    )
    # The pinned-read overlay must hold up at 1M+ keys exactly as it
    # does in BENCH_routing.json's 10k-key microbench.
    assert payload["pinned_epoch_read_per_s"] >= (
        0.4 * payload["route_read_per_s"]
    ), payload
    del scale_store

    # Memory: compact vs standard stack, traced heap bytes per tuple.
    # A tuple costs one store entry plus one partition-map entry, so the
    # honest comparison is the sum.  The store saves the per-tuple
    # Record graph; the dense map turns ~150 dict-and-list bytes per key
    # into one 4-byte array cell — together the lean stack must stay
    # under 0.6x the standard stack's bytes per tuple.
    compact = _bytes_per_tuple(CompactPartitionStore, MEMCMP_TUPLES)
    standard = _bytes_per_tuple(PartitionStore, MEMCMP_TUPLES)
    dense_map = _map_bytes_per_key(
        lambda: DensePartitionMap(MEMCMP_TUPLES), MEMCMP_TUPLES
    )
    standard_map = _map_bytes_per_key(PartitionMap, MEMCMP_TUPLES)
    payload["compact_bytes_per_tuple"] = round(compact, 2)
    payload["standard_bytes_per_tuple"] = round(standard, 2)
    payload["dense_map_bytes_per_key"] = round(dense_map, 2)
    payload["standard_map_bytes_per_key"] = round(standard_map, 2)
    stack_ratio = (compact + dense_map) / (standard + standard_map)
    payload["stack_bytes_ratio"] = round(stack_ratio, 4)
    assert compact < standard, (
        f"compact store lost its memory edge: {compact:.1f} vs "
        f"{standard:.1f} bytes/tuple"
    )
    assert dense_map < 0.25 * standard_map, (
        f"dense map lost its memory edge: {dense_map:.1f} vs "
        f"{standard_map:.1f} bytes/key"
    )
    assert stack_ratio < 0.6, payload

    # End-to-end simulation: arrivals + schedulers at 100+ nodes.
    payload.update(_run_e2e_simulation())

    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
