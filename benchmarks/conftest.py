"""Benchmark-harness helpers.

Every benchmark regenerates one of the paper's tables or figures: it
runs the relevant experiment cells once (``benchmark.pedantic`` with a
single round — these are macro-benchmarks, not micro-timings), prints
the series in the paper's layout, and writes the rendering to
``benchmarks/output/`` so EXPERIMENTS.md can reference it.
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

OUTPUT_DIR = pathlib.Path(__file__).resolve().parent / "output"


def emit(name: str, text: str) -> None:
    """Print a figure/table rendering and persist it to the output dir."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a macro-benchmark exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
