"""Ablation — the per-interval promotion cap (paper §3.3).

"We enforce a limit on the maximum number of high-priority repartition
transactions scheduled in each time interval to avoid significant
impacts caused by sudden changes of system workload and capacity."

Sweeping the cap with the Feedback scheduler under HIGH load — where
idle time is zero and promotions are the *only* way repartition work
runs — shows the trade-off: a tiny cap throttles deployment below what
the SP budget allows; a larger cap lets the controller use its budget.
"""

from dataclasses import replace

from repro.experiments import bench_scale, run_experiment
from repro.experiments.config import SchedulerConfig
from repro.metrics import mean, series

from .conftest import emit, run_once


def _config(cap):
    config = bench_scale(
        scheduler="Feedback",
        distribution="zipf",
        load="high",
        alpha=1.0,
        measure_intervals=40,
        warmup_intervals=5,
    )
    return replace(
        config,
        scheduling=SchedulerConfig(max_promotions_per_interval=cap),
    )


def _run_sweep():
    return {cap: run_experiment(_config(cap)) for cap in (1, 5, 20)}


def test_promotion_cap_tradeoff(benchmark):
    results = run_once(benchmark, _run_sweep)

    lines = ["Ablation: max promotions per interval (Feedback, Zipf/high)",
             f"{'cap':>5} {'done@':>6} {'rep_rate':>9} {'lat(ms)':>9} "
             f"{'fail':>7}"]
    final_rate = {}
    for cap, result in results.items():
        done = result.completion_interval
        final_rate[cap] = result.measured[-1].rep_rate
        lines.append(
            f"{cap:>5} {str(done) if done is not None else '-':>6} "
            f"{final_rate[cap]:>9.3f} "
            f"{mean(series(result.measured, 'mean_latency_ms')):>9.0f} "
            f"{mean(series(result.measured, 'failure_rate')):>7.3f}"
        )
    emit("ablation_feedback_cap", "\n".join(lines))

    # More promotion headroom never slows deployment down, and the
    # tight cap visibly throttles it below the SP budget.
    assert final_rate[1] <= final_rate[5] + 1e-9
    assert final_rate[5] <= final_rate[20] + 1e-9
    assert final_rate[1] < final_rate[20]
