"""Perf harness for the routing layer: epoch store, routing, publishing.

Times the hot paths the epoch-versioned-map refactor touched and writes
the numbers to ``BENCH_routing.json`` at the repo root so future changes
have a perf trajectory to compare against:

* **route_read / route_write** — single-tuple routing throughput
  (routes/s) through the store's current epoch;
* **pinned-epoch reads** — the stale-snapshot path: reads resolved
  through a pinned epoch with transitions stacked on top of it;
* **epoch publish** — latency of staging + publishing a fixed-size
  delta batch, against maps of increasing size (the refactor's O(changed
  keys) claim: publish cost must track the batch, not the map);
* **partition_sizes** — the incrementally-maintained O(partitions)
  aggregate, against map size.

Correctness is asserted alongside the timings.  Uses no pytest plugins,
so CI can run it as a plain smoke test:
``PYTHONPATH=src python -m pytest -x -q benchmarks/test_perf_routing.py``.
"""

import json
import os
import pathlib
import platform
import time

from repro.routing import PartitionMap, PartitionMapStore, QueryRouter

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = ROOT / "BENCH_routing.json"

PARTITIONS = 8
MAP_SIZES = (1_000, 10_000, 100_000)
PUBLISH_BATCH = 64
ROUTE_CALLS = 200_000


def build_store(n_keys: int) -> PartitionMapStore:
    pmap = PartitionMap()
    for key in range(n_keys):
        pmap.assign(key, key % PARTITIONS)
    return PartitionMapStore(pmap)


def _time_routing(store: PartitionMapStore, mode: str, n: int):
    router = QueryRouter(store)
    n_keys = len(store)
    keys = [(i * 7919) % n_keys for i in range(1000)]
    route = router.route_read if mode == "read" else router.route_write
    started = time.perf_counter()
    for i in range(n):
        route(keys[i % 1000])
    elapsed = time.perf_counter() - started
    assert router.reads_routed + router.writes_routed == n
    return n / elapsed


def _time_pinned_reads(store: PartitionMapStore, n: int, depth: int = 10):
    """Reads through a pinned epoch with ``depth`` transitions above it."""
    router = QueryRouter(store)
    pinned = store.pin()
    moved = []
    for i in range(depth):
        stage = store.begin_stage()
        key = i * 13
        primary = store.primary_of(key)
        stage.move(key, primary, (primary + 1) % PARTITIONS)
        store.publish(stage)
        moved.append(key)
    n_keys = len(store)
    keys = [(i * 7919) % n_keys for i in range(1000)]
    started = time.perf_counter()
    for i in range(n):
        router.route_read(keys[i % 1000], epoch=pinned)
    elapsed = time.perf_counter() - started
    # The pinned snapshot still reads the pre-move placement.
    for key in moved:
        assert pinned.primary_of(key) == key % PARTITIONS
    store.unpin(pinned)
    return n / elapsed


def _time_publish(store: PartitionMapStore, rounds: int = 50):
    """Mean latency of staging + publishing PUBLISH_BATCH moves."""
    keys = len(store)
    latencies = []
    for round_index in range(rounds):
        stage = store.begin_stage()
        base = (round_index * PUBLISH_BATCH * 31) % keys
        staged = 0
        offset = 0
        while staged < PUBLISH_BATCH:
            key = (base + offset * 17) % keys
            offset += 1
            primary = store.primary_of(key)
            if key in stage.staged_keys:
                continue
            stage.move(key, primary, (primary + 1) % PARTITIONS)
            staged += 1
        started = time.perf_counter()
        store.publish(stage)
        latencies.append(time.perf_counter() - started)
    assert store.publishes == rounds
    return sum(latencies) / len(latencies)


def _time_partition_sizes(store: PartitionMapStore, n: int = 20_000):
    started = time.perf_counter()
    for _ in range(n):
        sizes = store.partition_sizes()
    elapsed = time.perf_counter() - started
    assert sum(sizes.values()) >= len(store)
    return n / elapsed


def test_perf_routing():
    payload = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "map_sizes": list(MAP_SIZES),
        "publish_batch": PUBLISH_BATCH,
    }

    standard = build_store(10_000)
    payload["route_read_per_s"] = round(
        _time_routing(standard, "read", ROUTE_CALLS)
    )
    payload["route_write_per_s"] = round(
        _time_routing(build_store(10_000), "write", ROUTE_CALLS)
    )
    payload["pinned_epoch_read_per_s"] = round(
        _time_pinned_reads(build_store(10_000), ROUTE_CALLS // 4)
    )
    # The snapshot-overlay fast path keeps deep-pinned reads within a
    # small constant factor of live routing (merged dict probe instead
    # of a per-read delta-chain walk).  0.4x leaves headroom for timer
    # noise on shared CI hosts; the committed numbers should sit well
    # above the 0.5x acceptance line.
    assert payload["pinned_epoch_read_per_s"] >= (
        0.4 * payload["route_read_per_s"]
    ), (
        f"pinned-epoch reads regressed to "
        f"{payload['pinned_epoch_read_per_s']}/s vs "
        f"{payload['route_read_per_s']}/s live routes"
    )

    # Publish latency and partition_sizes throughput vs map size: both
    # must stay roughly flat as the map grows (they depend on batch size
    # and partition count, not tuple count).
    publish_ms = {}
    sizes_per_s = {}
    for n_keys in MAP_SIZES:
        store = build_store(n_keys)
        publish_ms[str(n_keys)] = round(_time_publish(store) * 1000, 4)
        sizes_per_s[str(n_keys)] = round(_time_partition_sizes(store))
    payload["epoch_publish_ms_by_map_size"] = publish_ms
    payload["partition_sizes_per_s_by_map_size"] = sizes_per_s

    # The O(changed-keys) publish claim, with generous headroom for
    # timer noise on shared CI hosts: growing the map 100× must not grow
    # publish latency anywhere near 100×.
    smallest = publish_ms[str(MAP_SIZES[0])]
    largest = publish_ms[str(MAP_SIZES[-1])]
    assert largest < smallest * 25, (
        f"epoch publish latency scales with map size: {publish_ms}"
    )

    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
