"""Table 1 — SP values for the Feedback/Hybrid experiments.

Regenerates the paper's Table 1 (the setpoints actually used per
experiment cell) and validates each setpoint by running its cell and
measuring the ratio the controller actually converged to: the measured
(normal + high-priority-repartition) / normal cost ratio should sit
near the configured SP while repartitioning is in progress.
"""

from repro.experiments import bench_scale, format_table1, run_experiment, setpoint_for
from repro.metrics import mean

from .conftest import emit, run_once


def test_table1_rendering(benchmark):
    """Emit Table 1 exactly as the paper prints it."""
    text = run_once(benchmark, format_table1)
    emit("table1_setpoints", text)
    assert "Feedback" in text and "Hybrid" in text


def _measure_feedback_tracking():
    """Run one Feedback cell and compare measured PV to its SP."""
    config = bench_scale(
        scheduler="Feedback",
        distribution="uniform",
        load="high",
        alpha=0.6,
        measure_intervals=30,
        warmup_intervals=5,
    )
    sp = setpoint_for("Feedback", "uniform", "high", 0.6)
    result = run_experiment(config)
    # Only intervals where repartitioning was still in progress count.
    active = [
        r for r in result.measured
        if r.rep_ops_total and r.rep_rate < 1.0 and r.normal_cost > 0
    ]
    measured = [1.0 + r.pv_ratio for r in active]
    return sp, measured, result


def test_feedback_controller_tracks_table1_setpoint(benchmark):
    sp, measured, result = run_once(benchmark, _measure_feedback_tracking)
    lines = [
        "Table 1 validation — Feedback, uniform/high, alpha=60%",
        f"configured SP: {sp}",
        f"measured mean PV while active: {mean(measured):.3f}",
        f"intervals active: {len(measured)}",
        f"final RepRate: {result.measured[-1].rep_rate:.3f}",
    ]
    emit("table1_feedback_tracking", "\n".join(lines))
    assert measured, "controller never became active"
    # The actuated ratio must stay the same order as the budget: the
    # controller should neither idle (PV stuck at 1.0) nor blow far past
    # the setpoint.
    assert 1.0 < mean(measured) < sp + 0.35
