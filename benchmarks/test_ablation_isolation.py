"""Ablation — isolation level (paper §4.1).

"[Each node] is configured to use the read committed isolation level
... higher isolation level will decrease the system concurrency and
hence lower the system's capacity.  But it will not affect the
performance of our algorithms."

This benchmark runs the same Hybrid deployment under read-committed and
serializable isolation: serializable (reads hold shared locks to
commit) must show more lock-induced aborts / no better throughput,
while the algorithm's deployment behaviour is preserved.
"""

from dataclasses import replace

from repro.experiments import bench_scale, run_experiment
from repro.metrics import mean, series

from .conftest import emit, run_once


def _config(isolation):
    config = bench_scale(
        scheduler="Hybrid",
        distribution="zipf",
        load="high",
        alpha=1.0,
        measure_intervals=30,
        warmup_intervals=5,
    )
    return replace(
        config, runtime=replace(config.runtime, isolation=isolation)
    )


def _run_both():
    return {
        isolation: run_experiment(_config(isolation))
        for isolation in ("read_committed", "serializable")
    }


def test_isolation_levels(benchmark):
    results = run_once(benchmark, _run_both)

    lines = ["Ablation: isolation level (Hybrid, Zipf/high)",
             f"{'isolation':<16} {'rep_rate':>9} {'thr(mean)':>10} "
             f"{'lat(ms)':>9} {'fail':>7}"]
    stats = {}
    for isolation, result in results.items():
        thru = mean(series(result.measured, "throughput_txn_per_min"))
        fail = mean(series(result.measured, "failure_rate"))
        stats[isolation] = (thru, fail, result.measured[-1].rep_rate)
        lines.append(
            f"{isolation:<16} {result.measured[-1].rep_rate:>9.3f} "
            f"{thru:>10.0f} "
            f"{mean(series(result.measured, 'mean_latency_ms')):>9.0f} "
            f"{fail:>7.3f}"
        )
    emit("ablation_isolation", "\n".join(lines))

    rc_thru, rc_fail, rc_rate = stats["read_committed"]
    sr_thru, sr_fail, sr_rate = stats["serializable"]
    # Serializable cannot beat read committed on throughput (§4.1), and
    # typically fails more transactions (read locks join the contention).
    assert sr_thru <= rc_thru * 1.05
    assert sr_fail >= rc_fail * 0.9
    # The deployment itself still works under either level.
    assert sr_rate > 0.7 and rc_rate > 0.7
