"""Figure 3 — transaction failure rate over time (α = 100%).

Four panels (Zipf/High, Uniform/High, Zipf/Low, Uniform/Low), five
scheduler lines each.  Expected shapes (paper §4.2-4.3):

* AfterAll sustains a high failure rate under high load (it never
  relieves the overload);
* Piggyback and Hybrid keep failures low throughout under high load;
* ApplyAll spikes during its stall, then drops to ~0;
* under Uniform/Low, Piggyback's failures outlast Hybrid's (few
  carriers, longer piggybacked transactions).
"""

from repro.experiments import figure3_failure_rate
from repro.metrics import mean, series

from .conftest import emit, run_once


def test_figure3(benchmark):
    result = run_once(benchmark, figure3_failure_rate)
    emit("figure3_failure_rate", result.render(every=5))

    def tail_failure(panel, scheduler):
        records = result.panels[panel].records(scheduler, 1.0)
        return mean(series(records, "failure_rate")[-10:])

    # Shape assertions from the paper.
    assert tail_failure("Zipf/High", "AfterAll") > 0.15
    assert tail_failure("Zipf/High", "Piggyback") < tail_failure(
        "Zipf/High", "AfterAll"
    )
    assert tail_failure("Zipf/High", "Hybrid") < tail_failure(
        "Zipf/High", "AfterAll"
    )
    assert tail_failure("Zipf/High", "ApplyAll") < 0.15  # post-stall calm
    assert tail_failure("Uniform/Low", "Hybrid") < 0.05
