"""Figure 7 — Uniform workload under LOW load.

The paper's observations — the panel where Piggyback breaks down:

* with uniform frequencies and a low arrival rate there are few
  transactions to piggyback on, so Piggyback takes much longer to
  finish than Hybrid, and its interference (longer carriers) persists;
* Hybrid exploits the idle capacity Piggyback cannot and finishes
  quickly;
* AfterAll and Feedback progress steadily off idle time.
"""

from repro.experiments import figure7_uniform_low
from repro.metrics import mean, series

from .conftest import emit, run_once


def test_figure7(benchmark):
    result = run_once(benchmark, figure7_uniform_low)
    emit("figure7_uniform_low", result.render(every=5))

    def done_at(scheduler, alpha=1.0):
        curve = series(result.records(scheduler, alpha), "rep_rate")
        for i, value in enumerate(curve):
            if value >= 1.0:
                return i
        return None

    hybrid_done = done_at("Hybrid")
    piggy_done = done_at("Piggyback")
    assert hybrid_done is not None
    # Hybrid finishes well before Piggyback (or Piggyback never does).
    if piggy_done is not None:
        assert hybrid_done < piggy_done
    else:
        assert (
            result.records("Piggyback", 1.0)[-1].rep_rate
            <= result.records("Hybrid", 1.0)[-1].rep_rate
        )

    # While deployment is in flight, piggybacked carriers run longer
    # than plain transactions: Piggyback's early latency exceeds
    # AfterAll's gentle baseline (the paper's §4.3 observation).
    piggy_early = mean(
        series(result.records("Piggyback", 1.0), "mean_latency_ms")[:6]
    )
    afterall_early = mean(
        series(result.records("AfterAll", 1.0), "mean_latency_ms")[:6]
    )
    assert piggy_early > afterall_early

    # Idle-time strategies make steady progress at every alpha.
    for alpha in (1.0, 0.6, 0.2):
        assert result.records("AfterAll", alpha)[-1].rep_rate > 0.5
        assert result.records("Feedback", alpha)[-1].rep_rate > 0.5
