"""Perf harness for the experiment engine: kernel, cache, parallelism.

Times the three layers this stack is built from and writes the numbers
to ``BENCH_engine.json`` at the repo root so future changes have a perf
trajectory to compare against:

* **kernel** — raw event-loop throughput (events/s) and the batched
  ``run_intervals`` path;
* **cell** — wall-clock of one standard bench-scale cell;
* **parallel** — a figure-4-scale batch (15 cells = 5 schedulers × 3 α)
  serial vs ``jobs=4``, with the speedup;
* **cache** — cold vs warm batch, asserting the warm pass executes zero
  simulations.

Correctness is asserted alongside the timings (parallel output must be
bit-identical to serial; the warm cache pass must be pure hits).  The
≥2× speedup assertion only applies on hosts with ≥4 CPUs — on smaller
machines the speedup is still *recorded* but not enforced.

Uses no pytest plugins, so CI can run it as a plain smoke test:
``PYTHONPATH=src python -m pytest -x -q benchmarks/test_perf_engine.py``.
"""

import dataclasses
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.experiments import (
    CellReport,
    ResultCache,
    bench_scale,
    run_cells,
)
from repro.experiments.figures import GRID_ALPHAS
from repro.sim import Environment

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = ROOT / "BENCH_engine.json"

#: 5 schedulers × 3 α values — the shape of one figure-4 grid.  The cells
#: use a shortened measurement window so the whole harness stays CI-sized
#: while each cell is still ~1s of real simulation.
FIGURE4_SCALE_CELLS = [
    bench_scale(
        scheduler=scheduler,
        alpha=alpha,
        measure_intervals=10,
        warmup_intervals=2,
    )
    for alpha in GRID_ALPHAS
    for scheduler in ("ApplyAll", "AfterAll", "Feedback", "Piggyback", "Hybrid")
]

PARALLEL_JOBS = 4


def _identical(a, b):
    return a.summary == b.summary and all(
        dataclasses.asdict(x) == dataclasses.asdict(y)
        for x, y in zip(a.intervals, b.intervals)
    )


def _time_kernel(n=50_000):
    """Pure event-loop throughput: schedule n timeouts, drain, time it."""
    env = Environment()
    fired = []
    callback = fired.append
    for i in range(n):
        timeout = env.timeout((i * 7) % 100)
        timeout.callbacks.append(callback)
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    assert len(fired) == n
    return n / elapsed


def _time_run_intervals(n=20_000, intervals=100):
    """The batched horizon path: n timeouts drained across 100 windows."""
    env = Environment()
    fired = []
    callback = fired.append
    for i in range(n):
        timeout = env.timeout(i % 100)
        timeout.callbacks.append(callback)
    boundaries = []
    started = time.perf_counter()
    env.run_intervals(1.0, intervals, on_interval=boundaries.append)
    elapsed = time.perf_counter() - started
    assert len(fired) == n
    assert len(boundaries) == intervals
    return n / elapsed


def test_perf_engine():
    payload = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "parallel_jobs": PARALLEL_JOBS,
    }

    # Layer 3: sim-kernel fast path.
    payload["kernel_events_per_s"] = round(_time_kernel())
    payload["kernel_run_intervals_events_per_s"] = round(_time_run_intervals())

    # One standard cell, for the per-cell trajectory.
    standard = bench_scale()
    started = time.perf_counter()
    (standard_result,) = run_cells([standard], jobs=1)
    payload["standard_cell_wall_clock_s"] = round(
        time.perf_counter() - started, 3
    )
    assert standard_result.summary["total_committed"] > 0

    # Layer 1: serial vs parallel over a figure-4-scale batch.
    started = time.perf_counter()
    serial = run_cells(FIGURE4_SCALE_CELLS, jobs=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_cells(FIGURE4_SCALE_CELLS, jobs=PARALLEL_JOBS)
    parallel_s = time.perf_counter() - started

    assert all(_identical(a, b) for a, b in zip(serial, parallel))
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    payload["figure4_scale_cells"] = len(FIGURE4_SCALE_CELLS)
    payload["serial_wall_clock_s"] = round(serial_s, 3)
    payload["parallel_wall_clock_s"] = round(parallel_s, 3)
    payload["parallel_speedup"] = round(speedup, 2)
    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at jobs={PARALLEL_JOBS} "
            f"on {os.cpu_count()} CPUs, measured {speedup:.2f}x"
        )

    # Layer 2: result cache — the warm pass must execute 0 simulations.
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        cold_report = CellReport()
        started = time.perf_counter()
        cold = run_cells(
            FIGURE4_SCALE_CELLS, jobs=1, cache=cache, report=cold_report
        )
        cold_s = time.perf_counter() - started

        warm_report = CellReport()
        started = time.perf_counter()
        warm = run_cells(
            FIGURE4_SCALE_CELLS, jobs=1, cache=cache, report=warm_report
        )
        warm_s = time.perf_counter() - started

    assert warm_report.executed == 0
    assert warm_report.cache_hits == len(FIGURE4_SCALE_CELLS)
    assert all(_identical(a, b) for a, b in zip(cold, warm))
    payload["cache_cold_wall_clock_s"] = round(cold_s, 3)
    payload["cache_warm_wall_clock_s"] = round(warm_s, 3)
    payload["cache_warm_executed"] = warm_report.executed
    payload["cache_warm_hits"] = warm_report.cache_hits

    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}:\n{json.dumps(payload, indent=2)}")


if __name__ == "__main__":
    sys.exit(os.system(f"{sys.executable} -m pytest -x -q {__file__}"))
