"""Perf harness for the experiment engine: kernel, cache, parallelism.

Times the layers this stack is built from and writes the numbers to
``BENCH_engine.json`` at the repo root so future changes have a perf
trajectory to compare against (``benchmarks/bench_guard.py`` gates CI on
the kernel numbers):

* **kernel microbench** — three event-loop shapes: *drain* (pre-scheduled
  timeouts, the calendar queue's best case), *mixed* (every callback
  schedules the next timeout, the steady-state simulation shape), and
  the batched ``run_intervals`` path;
* **cell** — wall-clock of one standard bench-scale cell;
* **speedup curve** — a figure-4-scale batch (15 cells = 5 schedulers ×
  3 α) serial vs the warm pool at jobs ∈ {1, 2, 4};
* **cache** — cold vs warm batch, asserting the warm pass executes zero
  simulations.

Provenance is honest: ``cpu_count`` is recorded as measured, and on a
box with fewer than 2 CPUs the parallel section is *skipped* — speedup
fields are ``null`` with ``parallel_skipped_reason`` saying why — since
a "speedup" measured under timesharing is noise that can mask real
regressions.  The ≥2× assertion applies only on hosts with ≥4 CPUs.

Correctness is asserted alongside the timings (parallel output must be
bit-identical to serial; the warm cache pass must be pure hits), and the
written payload must satisfy :func:`bench_guard.validate_schema`.

Uses no pytest plugins, so CI can run it as a plain smoke test:
``PYTHONPATH=src python -m pytest -x -q benchmarks/test_perf_engine.py``.
"""

import dataclasses
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_guard import validate_schema  # noqa: E402

from repro.experiments import (  # noqa: E402
    CellReport,
    ResultCache,
    bench_scale,
    run_cells,
)
from repro.experiments.figures import GRID_ALPHAS  # noqa: E402
from repro.sim import Environment  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = ROOT / "BENCH_engine.json"

#: 5 schedulers × 3 α values — the shape of one figure-4 grid.  The cells
#: use a shortened measurement window so the whole harness stays CI-sized
#: while each cell is still ~1s of real simulation.
FIGURE4_SCALE_CELLS = [
    bench_scale(
        scheduler=scheduler,
        alpha=alpha,
        measure_intervals=10,
        warmup_intervals=2,
    )
    for alpha in GRID_ALPHAS
    for scheduler in ("ApplyAll", "AfterAll", "Feedback", "Piggyback", "Hybrid")
]

#: The speedup curve is sampled at these worker counts (jobs=1 is the
#: serial baseline itself).
SPEEDUP_JOBS = (2, 4)
PARALLEL_JOBS = 4


def _identical(a, b):
    return a.summary == b.summary and all(
        dataclasses.asdict(x) == dataclasses.asdict(y)
        for x, y in zip(a.intervals, b.intervals)
    )


def _time_kernel_drain(n=50_000):
    """Best case: n pre-scheduled timeouts drained in one run."""
    env = Environment()
    fired = []
    callback = fired.append
    for i in range(n):
        timeout = env.timeout((i * 7) % 100)
        timeout.callbacks.append(callback)
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    assert len(fired) == n
    return n / elapsed


def _time_kernel_mixed(n=50_000, width=64):
    """Steady state: every fired event schedules its successor.

    ``width`` concurrent chains keep the pending set small and churning —
    the shape a live simulation (thousands of in-flight transactions)
    actually presents to the scheduler.
    """
    env = Environment()
    fired = [0]

    def reschedule(_event):
        fired[0] += 1
        if fired[0] <= n - width:
            timeout = env.timeout((fired[0] * 13) % 50)
            timeout.callbacks.append(reschedule)

    for _ in range(width):
        env.timeout(1.0).callbacks.append(reschedule)
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    assert fired[0] == n
    return fired[0] / elapsed


def _time_run_intervals(n=20_000, intervals=100):
    """The batched horizon path: n timeouts drained across 100 windows."""
    env = Environment()
    fired = []
    callback = fired.append
    for i in range(n):
        timeout = env.timeout(i % 100)
        timeout.callbacks.append(callback)
    boundaries = []
    started = time.perf_counter()
    env.run_intervals(1.0, intervals, on_interval=boundaries.append)
    elapsed = time.perf_counter() - started
    assert len(fired) == n
    assert len(boundaries) == intervals
    return n / elapsed


def test_perf_engine():
    cpu_count = os.cpu_count() or 1
    payload = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "parallel_jobs": PARALLEL_JOBS,
    }

    # Kernel microbench: drain / mixed / batched-interval shapes.
    payload["kernel_events_per_s"] = round(_time_kernel_drain())
    payload["kernel_mixed_events_per_s"] = round(_time_kernel_mixed())
    payload["kernel_run_intervals_events_per_s"] = round(_time_run_intervals())

    # One standard cell, for the per-cell trajectory.
    standard = bench_scale()
    started = time.perf_counter()
    (standard_result,) = run_cells([standard], jobs=1)
    payload["standard_cell_wall_clock_s"] = round(
        time.perf_counter() - started, 3
    )
    assert standard_result.summary["total_committed"] > 0

    # Speedup curve: serial baseline, then the warm pool at each width.
    started = time.perf_counter()
    serial = run_cells(FIGURE4_SCALE_CELLS, jobs=1)
    serial_s = time.perf_counter() - started
    payload["figure4_scale_cells"] = len(FIGURE4_SCALE_CELLS)
    payload["serial_wall_clock_s"] = round(serial_s, 3)

    if cpu_count < 2:
        # Timesharing one core cannot measure a speedup; recording a
        # number anyway (the pre-rework file said 0.8x) masks real
        # regressions on capable hardware.  Correctness of the pool path
        # is still enforced, untimed.
        parallel = run_cells(FIGURE4_SCALE_CELLS, jobs=PARALLEL_JOBS)
        assert all(_identical(a, b) for a, b in zip(serial, parallel))
        payload["parallel_wall_clock_s"] = None
        payload["parallel_speedup"] = None
        payload["speedup_by_jobs"] = None
        payload["parallel_skipped_reason"] = (
            f"cpu_count={cpu_count} < 2: parallel timing skipped "
            "(single-core speedup is not measurable)"
        )
    else:
        speedup_by_jobs = {"1": 1.0}
        parallel_s = None
        for jobs in SPEEDUP_JOBS:
            started = time.perf_counter()
            parallel = run_cells(FIGURE4_SCALE_CELLS, jobs=jobs)
            elapsed = time.perf_counter() - started
            assert all(_identical(a, b) for a, b in zip(serial, parallel))
            speedup_by_jobs[str(jobs)] = round(serial_s / elapsed, 2)
            if jobs == PARALLEL_JOBS:
                parallel_s = elapsed
        payload["parallel_wall_clock_s"] = round(parallel_s, 3)
        payload["parallel_speedup"] = speedup_by_jobs[str(PARALLEL_JOBS)]
        payload["speedup_by_jobs"] = speedup_by_jobs
        payload["parallel_skipped_reason"] = None
        if cpu_count >= PARALLEL_JOBS:
            assert payload["parallel_speedup"] >= 2.0, (
                f"expected >= 2x speedup at jobs={PARALLEL_JOBS} "
                f"on {cpu_count} CPUs, measured "
                f"{payload['parallel_speedup']:.2f}x"
            )

    # Result cache — the warm pass must execute 0 simulations.
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        cold_report = CellReport()
        started = time.perf_counter()
        cold = run_cells(
            FIGURE4_SCALE_CELLS, jobs=1, cache=cache, report=cold_report
        )
        cold_s = time.perf_counter() - started

        warm_report = CellReport()
        started = time.perf_counter()
        warm = run_cells(
            FIGURE4_SCALE_CELLS, jobs=1, cache=cache, report=warm_report
        )
        warm_s = time.perf_counter() - started

    assert warm_report.executed == 0
    assert warm_report.cache_hits == len(FIGURE4_SCALE_CELLS)
    assert all(_identical(a, b) for a, b in zip(cold, warm))
    payload["cache_cold_wall_clock_s"] = round(cold_s, 3)
    payload["cache_warm_wall_clock_s"] = round(warm_s, 3)
    payload["cache_warm_executed"] = warm_report.executed
    payload["cache_warm_hits"] = warm_report.cache_hits

    problems = validate_schema(payload)
    assert not problems, f"benchmark payload fails its own schema: {problems}"

    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}:\n{json.dumps(payload, indent=2)}")


if __name__ == "__main__":
    sys.exit(os.system(f"{sys.executable} -m pytest -x -q {__file__}"))
