"""Figure 5 — Uniform workload under HIGH load.

The paper's observations for this grid:

* ApplyAll finishes in a number of intervals proportional to α
  (20/12/4 in the paper);
* AfterAll can barely execute anything;
* Feedback runs with SP = 1.25 here: at α = 100% it cannot stop the
  queue from growing, but at α = 60% and 20% the smaller plan finishes
  within the run and the system recovers;
* Piggyback and Hybrid track ApplyAll's speed without its collapse.
"""

from repro.experiments import figure5_uniform_high
from repro.metrics import series

from .conftest import emit, run_once


def test_figure5(benchmark):
    result = run_once(benchmark, figure5_uniform_high)
    emit("figure5_uniform_high", result.render(every=5))

    def completion_interval(scheduler, alpha):
        rep = series(result.records(scheduler, alpha), "rep_rate")
        for i, value in enumerate(rep):
            if value >= 1.0:
                return i
        return None

    # ApplyAll completion time scales with alpha.
    apply_done = {
        alpha: completion_interval("ApplyAll", alpha)
        for alpha in (1.0, 0.6, 0.2)
    }
    assert all(done is not None for done in apply_done.values())
    assert apply_done[0.2] < apply_done[0.6] < apply_done[1.0]

    # AfterAll starves at every alpha.
    for alpha in (1.0, 0.6, 0.2):
        assert result.records("AfterAll", alpha)[-1].rep_rate < 0.2

    # Feedback (SP=1.25): finishes for smaller plans, not for alpha=1.
    assert completion_interval("Feedback", 0.2) is not None
    feedback_small = completion_interval("Feedback", 0.6)
    feedback_full = completion_interval("Feedback", 1.0)
    if feedback_full is not None and feedback_small is not None:
        assert feedback_small <= feedback_full

    # Piggyback/Hybrid: fast deployment, no stall.
    for scheduler in ("Piggyback", "Hybrid"):
        assert result.records(scheduler, 1.0)[-1].rep_rate > 0.9
        throughput = series(
            result.records(scheduler, 1.0), "throughput_txn_per_min"
        )
        assert min(throughput[1:]) > 0
