"""Figure 4 — Zipf workload under HIGH load (RepRate/Throughput/Latency).

3x3 grid: the three metrics × α ∈ {100%, 60%, 20%}.  Expected shapes:

* ApplyAll deploys fastest but collapses throughput during the stall,
  with latency impact outlasting the repartitioning (queue backlog);
* AfterAll makes no progress (no idle time) and stays degraded;
* Feedback makes steady partial progress;
* Piggyback/Hybrid deploy almost as fast as ApplyAll with no collapse,
  and beat it outright at lower α.
"""

from repro.experiments import figure4_zipf_high
from repro.metrics import mean, series

from .conftest import emit, run_once


def test_figure4(benchmark):
    result = run_once(benchmark, figure4_zipf_high)
    emit("figure4_zipf_high", result.render(every=5))

    def final_rep_rate(scheduler, alpha):
        return result.records(scheduler, alpha)[-1].rep_rate

    def throughput(scheduler, alpha):
        return series(
            result.records(scheduler, alpha), "throughput_txn_per_min"
        )

    for alpha in (1.0, 0.6, 0.2):
        # ApplyAll always completes, fastest or tied.
        assert final_rep_rate("ApplyAll", alpha) == 1.0
        # AfterAll starves under high load.
        assert final_rep_rate("AfterAll", alpha) < 0.2
        # Hybrid deploys the bulk of the plan without a stall.
        assert final_rep_rate("Hybrid", alpha) > 0.8
        assert min(throughput("Hybrid", alpha)[1:]) > 0
        # ApplyAll's signature throughput collapse during the stall:
        # the worst early interval falls far below the recovered tail
        # (a smaller alpha means a shorter stall, not a gentler one).
        apply = throughput("ApplyAll", alpha)
        tail = mean(apply[-10:])
        assert min(apply[:10]) < 0.25 * tail

    # Feedback outpaces AfterAll but trails Piggyback under Zipf/high.
    assert (
        final_rep_rate("AfterAll", 1.0)
        < final_rep_rate("Feedback", 1.0)
        < final_rep_rate("Piggyback", 1.0)
    )

    # Tail throughput: every deploying strategy beats AfterAll.
    for scheduler in ("ApplyAll", "Piggyback", "Hybrid"):
        assert mean(throughput(scheduler, 1.0)[-10:]) > mean(
            throughput("AfterAll", 1.0)[-10:]
        )
