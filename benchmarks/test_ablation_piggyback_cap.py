"""Ablation — the piggyback cap (paper §3.4).

"If too many repartition operations piggyback onto a normal
transaction, then the system throughput will be decreased due to
unnecessary aborts caused by the failure of the piggybacked repartition
operations.  Therefore, we need to limit the maximum number of
repartition operations that can piggyback onto each normal transaction."

With a small per-op failure probability injected, this benchmark sweeps
the cap: a cap below the plan's ops-per-type disables piggybacking
entirely (deployment stalls), while an unbounded cap exposes every
carrier to the injected failures.
"""

from dataclasses import replace

from repro.experiments import bench_scale, run_experiment
from repro.experiments.config import SchedulerConfig
from repro.metrics import mean, series

from .conftest import emit, run_once


def _config(cap):
    config = bench_scale(
        scheduler="Piggyback",
        distribution="zipf",
        load="high",
        alpha=1.0,
        measure_intervals=25,
        warmup_intervals=5,
    )
    return replace(
        config,
        runtime=replace(config.runtime, rep_op_failure_probability=0.02),
        scheduling=SchedulerConfig(max_ops_per_carrier=cap),
    )


def _run_sweep():
    return {cap: run_experiment(_config(cap)) for cap in (2, 4, 10, 50)}


def test_piggyback_cap_tradeoff(benchmark):
    results = run_once(benchmark, _run_sweep)

    lines = ["Ablation: max piggybacked ops per carrier "
             "(Piggyback, Zipf/high, 2% op failure)",
             f"{'cap':>5} {'rep_rate':>9} {'fail':>7} {'thr(mean)':>10}"]
    for cap, result in results.items():
        lines.append(
            f"{cap:>5} {result.measured[-1].rep_rate:>9.3f} "
            f"{mean(series(result.measured, 'failure_rate')):>7.3f} "
            f"{mean(series(result.measured, 'throughput_txn_per_min')):>10.0f}"
        )
    emit("ablation_piggyback_cap", "\n".join(lines))

    # Cap below the plan's ops-per-type (4 here): piggybacking is inert.
    assert results[2].measured[-1].rep_rate < 0.1
    # Any permissive cap deploys the bulk of the plan.
    assert results[4].measured[-1].rep_rate > 0.7
    assert results[10].measured[-1].rep_rate > 0.7
    # Deploying via carriers costs some extra failures vs. staying inert
    # under injected op faults — the trade-off the cap controls.
    inert_failure = mean(series(results[2].measured, "failure_rate")[:10])
    active_failure = mean(series(results[50].measured, "failure_rate")[:10])
    assert active_failure > 0.0
    assert results[50].measured[-1].rep_rate > results[2].measured[-1].rep_rate
