"""Seed robustness — the headline comparison across random seeds.

The paper reports single runs; this benchmark checks that the headline
qualitative result (Hybrid deploys the plan under high load with far
less disruption than the baselines) is not a seed artefact: it sweeps
three seeds per scheduler on Zipf/high and compares the aggregated
metrics.
"""

from repro.experiments import (
    bench_scale,
    format_sweep_comparison,
    sweep_seeds,
)

from .conftest import emit, run_once

SEEDS = (0, 1, 2)


def _run_sweeps():
    sweeps = {}
    for scheduler in ("AfterAll", "ApplyAll", "Hybrid"):
        config = bench_scale(
            scheduler=scheduler,
            distribution="zipf",
            load="high",
            alpha=1.0,
            measure_intervals=25,
            warmup_intervals=5,
        )
        sweeps[scheduler] = sweep_seeds(config, SEEDS)
    return sweeps


def test_headline_result_robust_across_seeds(benchmark):
    sweeps = run_once(benchmark, _run_sweeps)
    emit(
        "seed_robustness",
        "Seed robustness (Zipf/high, alpha=100%, seeds 0-2)\n"
        + format_sweep_comparison(sweeps),
    )

    hybrid = sweeps["Hybrid"]
    afterall = sweeps["AfterAll"]
    applyall = sweeps["ApplyAll"]

    # In every seed, Hybrid deploys most of the plan; AfterAll nothing.
    for result in hybrid.results:
        assert result.measured[-1].rep_rate > 0.7
    for result in afterall.results:
        assert result.measured[-1].rep_rate < 0.2

    # Aggregates: Hybrid's failure rate beats AfterAll's by a wide
    # margin even at mean - std vs mean + std.
    hybrid_fail = hybrid.stats("mean_failure_rate")
    afterall_fail = afterall.stats("mean_failure_rate")
    assert hybrid_fail.mean + hybrid_fail.std < (
        afterall_fail.mean - afterall_fail.std
    )

    # ApplyAll's whole-run failure rate is the worst of the three in
    # every seed (its stall expires a whole queue's worth of clients).
    for apply_result, hybrid_result in zip(
        applyall.results, hybrid.results
    ):
        assert (
            apply_result.summary["mean_failure_rate"]
            > hybrid_result.summary["mean_failure_rate"]
        )
