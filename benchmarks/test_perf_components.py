"""Micro-benchmarks of the hot components (kernel, locks, routing).

Unlike the figure/table macro-benchmarks, these time the substrate
itself: useful to catch performance regressions in the event loop, lock
manager, and router that would silently inflate every experiment.
"""

import random

from repro.locking import DeadlockDetector, LockManager, LockMode
from repro.routing import PartitionMap, QueryRouter
from repro.sim import Environment
from repro.sim.random import ZipfSampler


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 20k timeout events."""

    def run():
        env = Environment()
        counter = []

        def proc(delay):
            yield env.timeout(delay)
            counter.append(1)

        for i in range(20_000):
            env.process(proc((i * 7) % 100))
        env.run()
        return len(counter)

    assert benchmark(run) == 20_000


def test_lock_manager_throughput(benchmark):
    """Acquire/release 10k uncontended + contended locks."""

    def run():
        env = Environment()
        manager = LockManager(env, DeadlockDetector())
        for i in range(5_000):
            manager.acquire(i % 50, i % 200, LockMode.EXCLUSIVE)
            manager.release_all(i % 50)
        for i in range(5_000):
            event = manager.acquire(1, i % 100, LockMode.SHARED)
            event.defused = True
        manager.release_all(1)
        return manager.grants

    assert benchmark(run) > 0


def test_router_throughput(benchmark):
    """Route 50k reads through a 100k-tuple lookup table."""
    pmap = PartitionMap()
    for key in range(100_000):
        pmap.assign(key, key % 5)
    router = QueryRouter(pmap)
    rng = random.Random(0)
    keys = [rng.randrange(100_000) for _ in range(50_000)]

    def run():
        total = 0
        for key in keys:
            total += router.route_read(key)
        return total

    benchmark(run)


def test_zipf_sampling_throughput(benchmark):
    """Draw 100k samples from the paper-sized Zipf population."""
    sampler = ZipfSampler(23_457, 1.16, random.Random(0))

    def run():
        return sum(sampler.sample() for _ in range(100_000))

    benchmark(run)
