"""Figure 6 — Zipf workload under LOW load.

The paper's observations:

* the system now has idle time, so AfterAll makes real progress;
* Feedback adds repartition transactions beyond the idle-time baseline
  and deploys faster than AfterAll, at a small latency premium;
* Hybrid finishes faster than Feedback (carriers + idle capacity) and
  only ApplyAll beats it;
* ApplyAll still stalls normal processing while it runs.
"""

from repro.experiments import figure6_zipf_low
from repro.metrics import mean, series

from .conftest import emit, run_once


def test_figure6(benchmark):
    result = run_once(benchmark, figure6_zipf_low)
    emit("figure6_zipf_low", result.render(every=5))

    def rep_rate_curve(scheduler, alpha=1.0):
        return series(result.records(scheduler, alpha), "rep_rate")

    def done_at(scheduler, alpha=1.0):
        for i, value in enumerate(rep_rate_curve(scheduler, alpha)):
            if value >= 1.0:
                return i
        return None

    # Idle time lets AfterAll progress substantially now.
    assert rep_rate_curve("AfterAll")[-1] > 0.5

    # Feedback at least matches AfterAll interval by interval.
    feedback = rep_rate_curve("Feedback")
    afterall = rep_rate_curve("AfterAll")
    assert mean(feedback) >= mean(afterall)

    # Hybrid completes about as fast as ApplyAll (the paper: only
    # ApplyAll is faster; at this scale they can land within a couple
    # of intervals of each other).
    hybrid_done = done_at("Hybrid")
    apply_done = done_at("ApplyAll")
    assert hybrid_done is not None and apply_done is not None
    assert apply_done <= hybrid_done + 2
    feedback_done = done_at("Feedback")
    if feedback_done is not None:
        assert hybrid_done <= feedback_done

    # ApplyAll's stall: throughput hits zero early in the run.
    apply_throughput = series(
        result.records("ApplyAll", 1.0), "throughput_txn_per_min"
    )
    assert min(apply_throughput[:apply_done or 10]) == 0.0

    # Piggyback does not finish (cold Zipf types rarely arrive).
    assert rep_rate_curve("Piggyback")[-1] < 1.0
