#!/usr/bin/env python3
"""Strict-mypy gate over the determinism-critical core, with a baseline.

Runs ``mypy`` using the ``[tool.mypy]`` config in ``pyproject.toml``
(which pins the checked file set) and compares the errors against
``tools/mypy-baseline.txt``:

* errors in the baseline are tolerated (pre-existing debt),
* errors NOT in the baseline fail the gate (new debt),
* baseline entries that no longer fire are reported so the baseline can
  be burned down (warning only -- a fix should not break the build).

Baseline lines are normalised by stripping line/column numbers, so
unrelated edits that shift code around do not invalidate entries.

Usage::

    python tools/check_types.py            # gate (CI)
    python tools/check_types.py --update   # rewrite the baseline

When mypy is not installed (e.g. the minimal local container) the gate
is skipped with a warning and exit 0; CI installs mypy so the gate is
always live there.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = Path(__file__).resolve().parent / "mypy-baseline.txt"

#: ``path:line:`` or ``path:line:col:`` location prefixes.
_LOCATION_RE = re.compile(r":\d+(:\d+)?:")

#: Lines mypy emits that are not per-error diagnostics.
_NOISE_RE = re.compile(
    r"^(Found \d+ error|Success: no issues|.*: note: )"
)


def normalize(line: str) -> str | None:
    """A position-independent key for one mypy output line.

    Returns ``None`` for summary/note lines that should not be diffed.
    """
    line = line.strip()
    if not line or _NOISE_RE.match(line):
        return None
    return _LOCATION_RE.sub(":", line, count=1)


def normalize_output(text: str) -> list[str]:
    keys = (normalize(line) for line in text.splitlines())
    return sorted(key for key in keys if key is not None)


def diff_against_baseline(
    errors: list[str], baseline: list[str]
) -> tuple[list[str], list[str]]:
    """``(new, stale)``: errors not in baseline, entries no longer firing."""
    remaining = Counter(baseline)
    new: list[str] = []
    for error in errors:
        if remaining[error] > 0:
            remaining[error] -= 1
        else:
            new.append(error)
    stale = sorted(remaining.elements())
    return new, stale


def load_baseline() -> list[str]:
    if not BASELINE.exists():
        return []
    return [
        line.strip()
        for line in BASELINE.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]


def write_baseline(errors: list[str]) -> None:
    header = (
        "# mypy strict-mode debt tolerated by tools/check_types.py.\n"
        "# One normalised error per line (line/column stripped).\n"
        "# Burn entries down; never add new ones without a review.\n"
    )
    body = "".join(f"{error}\n" for error in errors)
    BASELINE.write_text(header + body, encoding="utf-8")


def run_mypy() -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite tools/mypy-baseline.txt from the current errors",
    )
    args = parser.parse_args(argv)

    have_mypy = (
        shutil.which("mypy") is not None
        or subprocess.run(
            [sys.executable, "-c", "import mypy"], capture_output=True
        ).returncode
        == 0
    )
    if not have_mypy:
        print(
            "check_types: mypy is not installed; skipping the strict gate "
            "(CI installs it, so this only relaxes local runs)",
            file=sys.stderr,
        )
        return 0

    returncode, output = run_mypy()
    if returncode not in (0, 1):  # 2 = usage/config error: always fatal
        sys.stderr.write(output)
        print(f"check_types: mypy failed (exit {returncode})", file=sys.stderr)
        return returncode

    errors = normalize_output(output)
    if args.update:
        write_baseline(errors)
        print(f"check_types: wrote {len(errors)} entries to {BASELINE.name}")
        return 0

    new, stale = diff_against_baseline(errors, load_baseline())
    for entry in stale:
        print(f"check_types: stale baseline entry (fixed?): {entry}")
    if new:
        print(
            f"check_types: {len(new)} new strict-mypy error(s) "
            "not covered by the baseline:",
            file=sys.stderr,
        )
        for error in new:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(
        f"check_types: OK ({len(errors)} baselined, 0 new, "
        f"{len(stale)} stale)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
